package lflr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/krylov"
	"repro/internal/la"
)

// ImplicitConfig describes the backward-Euler LFLR heat run of experiment
// T3: each time step solves (I + ν·L)·u' = u with distributed CG, and
// each rank persists a *coarsened* replica of its strip (coarsening
// factor Coarsen per dimension, so the replica costs ~1/Coarsen² of the
// state). On failure the replacement bootstraps from the interpolated
// coarse model — §III-C's "redundant storage of coarse model" recovery —
// which is approximate: the experiment measures how the approximation
// error and the post-recovery solver effort scale with Coarsen.
type ImplicitConfig struct {
	Nx, Ny    int
	Nu        float64 // implicit diffusion number (any positive value is stable)
	Steps     int
	Coarsen   int // replica coarsening factor (1 = exact replica)
	Killer    Killer
	CGTol     float64
	CGMaxIter int
}

// ImplicitResult reports one implicit run.
type ImplicitResult struct {
	U             []float64
	FinalClock    float64
	Recoveries    int
	CGIters       []int // per-step global CG iteration counts
	ReplicaFloats int   // per-rank replica size actually persisted
}

type implicitRank struct {
	ctx      *Ctx
	cfg      ImplicitConfig
	op       *dist.Stencil5
	nx       int
	jlo, jhi int
	u, uPrev []float64
	updates  int
	cgIters  []int
	replicaN int
}

// RunImplicitHeat executes the scenario and returns rank 0's view.
func RunImplicitHeat(world *comm.World, store *Store, cfg ImplicitConfig) (ImplicitResult, error) {
	if cfg.Coarsen <= 0 {
		cfg.Coarsen = 1
	}
	if cfg.CGTol <= 0 {
		cfg.CGTol = 1e-10
	}
	if cfg.CGMaxIter <= 0 {
		cfg.CGMaxIter = 500
	}
	rt := NewRuntime(world, store)
	resCh := make(chan ImplicitResult, 1)

	recoveries, err := rt.Execute(func(ctx *Ctx) error {
		ir := &implicitRank{ctx: ctx, cfg: cfg, nx: cfg.Nx}
		ir.op = dist.NewStencil5(ctx.Comm, cfg.Nx, cfg.Ny, 1+4*cfg.Nu, -cfg.Nu)
		ir.jlo, ir.jhi = ir.op.Rows()

		if ctx.Recovering {
			if err := ir.restoreCoarse(); err != nil {
				return err
			}
			if err := ir.recoverProtocol(); err != nil {
				return err
			}
			// From here on this rank is an ordinary survivor.
			ctx.Recovering = false
		} else {
			ir.initState()
		}
		if err := ir.mainLoop(); err != nil {
			return err
		}

		full, err := ctx.Comm.Allgather(ir.u)
		if err != nil {
			return err
		}
		clock, err := ctx.Comm.AllreduceScalar(ctx.Comm.Clock(), comm.OpMax)
		if err != nil {
			return err
		}
		if ctx.Comm.Rank() == 0 {
			resCh <- ImplicitResult{U: full, FinalClock: clock, CGIters: ir.cgIters, ReplicaFloats: ir.replicaN}
		}
		return nil
	})
	if err != nil {
		return ImplicitResult{}, err
	}
	res := <-resCh
	res.Recoveries = recoveries
	return res, nil
}

func (r *implicitRank) initState() {
	nRows := r.jhi - r.jlo
	r.u = make([]float64, nRows*r.nx)
	r.uPrev = make([]float64, nRows*r.nx)
	for j := 0; j < nRows; j++ {
		gj := r.jlo + j
		for i := 0; i < r.nx; i++ {
			x := float64(i+1) / float64(r.cfg.Nx+1)
			y := float64(gj+1) / float64(r.cfg.Ny+1)
			r.u[j*r.nx+i] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
}

func (r *implicitRank) mainLoop() error {
	for r.updates < r.cfg.Steps {
		err := r.doStep()
		switch {
		case err == nil:
			continue
		case errors.Is(err, comm.ErrRankFailed):
			r.ctx.AwaitRepair()
			if err := r.recoverProtocol(); err != nil {
				return err
			}
		default:
			return err
		}
	}
	return nil
}

func (r *implicitRank) doStep() error {
	c := r.ctx.Comm
	s := r.updates

	// Persist the coarse replica *before* the kill check so the replica
	// matches the survivors' pre-step state exactly and the recovery
	// error isolates the coarsening effect.
	r.persistCoarse(s)
	if r.cfg.Killer != nil && r.cfg.Killer.ShouldDie(c.Rank(), s) {
		return c.Die()
	}

	copy(r.uPrev, r.u)
	x, st, err := krylov.DistCG(c, r.op, r.u, r.u, krylov.DistOptions{Tol: r.cfg.CGTol, MaxIter: r.cfg.CGMaxIter})
	if err != nil {
		return err
	}
	r.u = x
	r.updates++
	r.cgIters = append(r.cgIters, st.Iterations)

	localE := la.Dot(r.u, r.u)
	c.Compute(la.FlopsDot(len(r.u)))
	_, err = c.AllreduceScalar(localE, comm.OpSum)
	return err
}

// persistCoarse saves the sampled strip and step number.
func (r *implicitRank) persistCoarse(step int) {
	cs := r.cfg.Coarsen
	si := sampleIdx(r.nx, cs)
	sj := sampleIdx(r.jhi-r.jlo, cs)
	coarse := make([]float64, 0, len(si)*len(sj))
	for _, j := range sj {
		for _, i := range si {
			coarse = append(coarse, r.u[j*r.nx+i])
		}
	}
	r.replicaN = len(coarse)
	r.ctx.Store.Save(r.ctx.Comm, "coarse", coarse)
	r.ctx.Store.SaveScalar(r.ctx.Comm, "step", float64(step))
}

// restoreCoarse rebuilds the fine strip by bilinear interpolation of the
// persisted coarse replica — the bootstrap state of §III-C.
func (r *implicitRank) restoreCoarse() error {
	coarse, ok := r.ctx.Store.Restore(r.ctx.Comm, "coarse")
	if !ok {
		return fmt.Errorf("lflr: rank %d has no coarse replica", r.ctx.Comm.Rank())
	}
	sv, _ := r.ctx.Store.RestoreScalar(r.ctx.Comm, "step")
	nRows := r.jhi - r.jlo
	cs := r.cfg.Coarsen
	si := sampleIdx(r.nx, cs)
	sj := sampleIdx(nRows, cs)
	if len(coarse) != len(si)*len(sj) {
		return fmt.Errorf("lflr: coarse replica has %d values, want %d", len(coarse), len(si)*len(sj))
	}
	r.u = make([]float64, nRows*r.nx)
	r.uPrev = make([]float64, nRows*r.nx)
	for j := 0; j < nRows; j++ {
		for i := 0; i < r.nx; i++ {
			r.u[j*r.nx+i] = bilinear(coarse, si, sj, i, j)
		}
	}
	r.updates = int(sv)
	r.cgIters = nil
	return nil
}

// recoverProtocol for the implicit solver: consensus on the target step,
// survivor rollback via uPrev, and the recovering rank accepting the
// (interpolated, approximate) bootstrap state.
func (r *implicitRank) recoverProtocol() error {
	c := r.ctx.Comm
	rec := 0.0
	if r.ctx.Recovering {
		rec = 1
	}
	info, err := c.Allgather([]float64{float64(r.updates), rec})
	if err != nil {
		return err
	}
	target := math.MaxInt32
	anyRecovering := false
	for rr := 0; rr < c.Size(); rr++ {
		if info[2*rr+1] == 1 {
			anyRecovering = true
			continue
		}
		if up := int(info[2*rr]); up < target {
			target = up
		}
	}
	if !anyRecovering {
		return nil
	}
	if !r.ctx.Recovering && r.updates > target {
		r.u, r.uPrev = r.uPrev, r.u
		r.updates--
		if r.updates != target {
			return fmt.Errorf("lflr: implicit rollback gap on rank %d", c.Rank())
		}
	}
	if r.ctx.Recovering && r.updates != target {
		// The replica always corresponds to the pre-step state of the
		// kill step, which is the consensus target by construction.
		return fmt.Errorf("lflr: coarse replica step %d does not match target %d", r.updates, target)
	}
	return nil
}

// sampleIdx returns 0, c, 2c, … plus the last index (so interpolation has
// support up to the strip edge).
func sampleIdx(n, c int) []int {
	if n <= 0 {
		return nil
	}
	var idx []int
	for i := 0; i < n; i += c {
		idx = append(idx, i)
	}
	if idx[len(idx)-1] != n-1 {
		idx = append(idx, n-1)
	}
	return idx
}

// bilinear interpolates the coarse grid (values at rows sj × cols si) at
// fine point (i, j).
func bilinear(coarse []float64, si, sj []int, i, j int) float64 {
	ci := bracket(si, i)
	cj := bracket(sj, j)
	i0, i1 := si[ci], si[min(ci+1, len(si)-1)]
	j0, j1 := sj[cj], sj[min(cj+1, len(sj)-1)]
	at := func(cjj, cii int) float64 { return coarse[cjj*len(si)+cii] }
	tx := 0.0
	if i1 > i0 {
		tx = float64(i-i0) / float64(i1-i0)
	}
	ty := 0.0
	if j1 > j0 {
		ty = float64(j-j0) / float64(j1-j0)
	}
	v00 := at(cj, ci)
	v01 := at(cj, min(ci+1, len(si)-1))
	v10 := at(min(cj+1, len(sj)-1), ci)
	v11 := at(min(cj+1, len(sj)-1), min(ci+1, len(si)-1))
	return (1-ty)*((1-tx)*v00+tx*v01) + ty*((1-tx)*v10+tx*v11)
}

// bracket returns the largest k with s[k] <= v.
func bracket(s []int, v int) int {
	k := 0
	for k+1 < len(s) && s[k+1] <= v {
		k++
	}
	return k
}
