package lflr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/la"
)

// HeatConfig describes the explicit LFLR heat-equation run of experiment
// F4: a 2D FTCS heat equation on an Nx×Ny interior grid, row-strip
// partitioned, with uncoordinated per-rank persistence every PersistEvery
// steps, sender-side halo logging in between, and (optionally) one
// scheduled process kill.
type HeatConfig struct {
	Nx, Ny       int     // global interior grid
	Nu           float64 // dt/h², ≤ 0.25 for stability
	Steps        int
	PersistEvery int
	Killer       Killer // nil for a fault-free run

	// SDC, when non-nil, silently corrupts one value of the field —
	// the soft-error counterpart of Killer's hard failure.
	SDC *SDCEvent
	// EnergyGuard arms the skeptical conservation detector: the global
	// energy Σu² of the explicit scheme is non-increasing for ν ≤ 1/4,
	// so an energy increase (or a non-finite energy) proves corruption.
	// Detection triggers a *local rollback*: every rank restores its own
	// persisted state — SkP detection recovered through the LFLR store,
	// the §II-A "rolling back to a previous valid state" option, with no
	// process loss involved. Downward corruption evades this detector
	// (documented in T1); upward corruption — the catastrophic kind — is
	// always caught.
	EnergyGuard bool
}

// SDCEvent schedules one silent bit flip: at the top of the given step,
// the given rank flips the given bit of its local field element Index.
// It fires at most once (the flip is transient, so re-executed steps
// after a rollback run clean). Only the victim rank touches the used
// flag, so concurrent queries are race-free.
type SDCEvent struct {
	Rank, Step int
	Index      int // local index within the rank's strip
	Bit        int // IEEE-754 bit position to flip
	used       bool
}

func (e *SDCEvent) fire(rank, step int) bool {
	if e == nil || rank != e.Rank {
		return false
	}
	if e.used || step != e.Step {
		return false
	}
	e.used = true
	return true
}

// Killer schedules process deaths; *fault.StepKiller and *fault.Schedule
// both satisfy it.
type Killer interface {
	ShouldDie(rank, step int) bool
}

// HeatResult is what one run reports.
type HeatResult struct {
	U           []float64 // final global field (rank-order concatenation)
	Energy      float64   // final Σu²
	FinalClock  float64   // max virtual time over ranks
	Recoveries  int
	ReplaySteps int // recomputed steps during recoveries (failed rank only)

	SDCDetections int // energy-guard firings
	RollbackSteps int // steps re-executed after SDC rollbacks
}

// heatRank is the per-rank state of the explicit solver.
type heatRank struct {
	ctx      *Ctx
	cfg      HeatConfig
	st       *dist.Stencil5 // layout + halo exchange (Diag/Off unused here)
	nx       int
	jlo, jhi int
	u, uPrev []float64
	updates  int // number of updates applied to u ("state version")

	// Sender-side message logs since the last persist: step -> row sent.
	logDown map[int][]float64 // rows sent to rank-1
	logUp   map[int][]float64 // rows sent to rank+1

	replaySteps int

	// Skeptical conservation state: the last accepted global energy
	// (identical on every rank, so rollback decisions need no extra
	// agreement round), and SDC accounting.
	prevEnergy    float64
	energyValid   bool
	sdcDetections int
	rollbackSteps int
}

const (
	tagRecoverDown = 4100 // log bundle to a recovering lower neighbour
	tagRecoverUp   = 4101 // log bundle to a recovering upper neighbour
)

// RunHeat executes the configured scenario over an existing world and
// returns the result observed by rank 0 (global field gathered at the
// end). The store must be fresh per run.
func RunHeat(world *comm.World, store *Store, cfg HeatConfig) (HeatResult, error) {
	if cfg.PersistEvery <= 0 {
		cfg.PersistEvery = 1
	}
	if world.Size() > cfg.Ny {
		// The recovery protocol identifies neighbours by rank adjacency,
		// which requires every rank to own at least one grid row.
		return HeatResult{}, fmt.Errorf("lflr: %d ranks exceed %d grid rows", world.Size(), cfg.Ny)
	}
	rt := NewRuntime(world, store)
	var result HeatResult
	resCh := make(chan HeatResult, 1)

	recoveries, err := rt.Execute(func(ctx *Ctx) error {
		hr := &heatRank{ctx: ctx, cfg: cfg}
		hr.st = dist.NewStencil5(ctx.Comm, cfg.Nx, cfg.Ny, 0, 0)
		hr.nx = cfg.Nx
		hr.jlo, hr.jhi = hr.st.Rows()
		hr.logDown = make(map[int][]float64)
		hr.logUp = make(map[int][]float64)

		if ctx.Recovering {
			if err := hr.restoreFromStore(); err != nil {
				return err
			}
			if err := hr.recoverProtocol(); err != nil {
				return err
			}
			// From here on this rank is an ordinary survivor.
			ctx.Recovering = false
		} else {
			hr.initState()
		}

		if err := hr.mainLoop(); err != nil {
			return err
		}

		// Gather the global field for verification.
		full, err := ctx.Comm.Allgather(hr.u)
		if err != nil {
			return err
		}
		energy, err := ctx.Comm.AllreduceScalar(la.Dot(hr.u, hr.u), comm.OpSum)
		if err != nil {
			return err
		}
		clock, err := ctx.Comm.AllreduceScalar(ctx.Comm.Clock(), comm.OpMax)
		if err != nil {
			return err
		}
		// Replay happens on recovered ranks; aggregate so rank 0 reports it.
		replayed, err := ctx.Comm.AllreduceScalar(float64(hr.replaySteps), comm.OpSum)
		if err != nil {
			return err
		}
		if ctx.Comm.Rank() == 0 {
			resCh <- HeatResult{
				U: full, Energy: energy, FinalClock: clock, ReplaySteps: int(replayed),
				SDCDetections: hr.sdcDetections, RollbackSteps: hr.rollbackSteps,
			}
		}
		return nil
	})
	if err != nil {
		return result, err
	}
	result = <-resCh
	result.Recoveries = recoveries
	return result, nil
}

// initState samples the same initial condition as problems.NewHeatGrid on
// this rank's strip.
func (h *heatRank) initState() {
	nRows := h.jhi - h.jlo
	h.u = make([]float64, nRows*h.nx)
	h.uPrev = make([]float64, nRows*h.nx)
	for j := 0; j < nRows; j++ {
		gj := h.jlo + j
		for i := 0; i < h.nx; i++ {
			x := float64(i+1) / float64(h.cfg.Nx+1)
			y := float64(gj+1) / float64(h.cfg.Ny+1)
			h.u[j*h.nx+i] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	h.updates = 0
}

// mainLoop advances to cfg.Steps updates, handling failure events.
func (h *heatRank) mainLoop() error {
	for h.updates < h.cfg.Steps {
		err := h.doStep()
		switch {
		case err == nil:
			continue
		case errors.Is(err, comm.ErrRankFailed):
			h.ctx.AwaitRepair()
			if err := h.recoverProtocol(); err != nil {
				return err
			}
		default:
			return err // includes ErrKilled on this rank
		}
	}
	return nil
}

// doStep executes one time step: optional kill, persistence, halo
// exchange with logging, the FTCS update, and the step-boundary energy
// all-reduce that doubles as global failure detection and a skeptical
// conservation check.
func (h *heatRank) doStep() error {
	c := h.ctx.Comm
	s := h.updates

	if h.cfg.Killer != nil && h.cfg.Killer.ShouldDie(c.Rank(), s) {
		return c.Die()
	}
	if s%h.cfg.PersistEvery == 0 {
		h.persist(s)
	}
	if h.cfg.SDC.fire(c.Rank(), s) && h.cfg.SDC.Index < len(h.u) {
		// Silent data corruption strikes the field.
		h.u[h.cfg.SDC.Index] = flipBit(h.u[h.cfg.SDC.Index], h.cfg.SDC.Bit)
	}

	below, above, err := h.exchangeAndLog(s, h.u)
	if err != nil {
		return err
	}
	h.applyUpdate(below, above)

	// Step-boundary reduction: energy is non-increasing for ν ≤ 1/4
	// (skeptical conservation check), and the collective guarantees every
	// rank observes a failure within one step.
	localE := la.Dot(h.u, h.u)
	c.Compute(la.FlopsDot(len(h.u)))
	energy, err := c.AllreduceScalar(localE, comm.OpSum)
	if err != nil {
		return err
	}
	if h.cfg.EnergyGuard && h.energyValid && violatesDecay(h.prevEnergy, energy) {
		// Corruption detected somewhere in the world. Every rank holds
		// the identical (reduced) energy, so all take the same branch:
		// restore the last persisted state locally and re-execute.
		h.sdcDetections++
		before := h.updates
		if err := h.restoreFromStore(); err != nil {
			return err
		}
		h.rollbackSteps += before - h.updates
		h.energyValid = false
		return nil
	}
	h.prevEnergy = energy
	h.energyValid = true
	return nil
}

// violatesDecay is the conservation detector: for the explicit scheme the
// energy must not increase (a hair of slack absorbs rounding), and must
// stay finite.
func violatesDecay(prev, cur float64) bool {
	if math.IsNaN(cur) || math.IsInf(cur, 0) {
		return true
	}
	return cur > prev*(1+1e-12)
}

// flipBit mirrors fault.FlipBit locally to keep the import graph flat.
func flipBit(x float64, bit int) float64 {
	return math.Float64frombits(math.Float64bits(x) ^ (1 << uint(bit)))
}

// exchangeAndLog sends boundary rows to strip neighbours, recording each
// sent row in the sender-side log keyed by step.
func (h *heatRank) exchangeAndLog(step int, u []float64) (below, above []float64, err error) {
	c := h.ctx.Comm
	nRows := h.jhi - h.jlo
	if c.Rank() > 0 && nRows > 0 {
		row := la.Copy(u[:h.nx])
		h.logDown[step] = row
		if err := c.Send(c.Rank()-1, 3000+1, row); err != nil {
			return nil, nil, err
		}
	}
	if c.Rank() < c.Size()-1 && nRows > 0 {
		row := la.Copy(u[(nRows-1)*h.nx:])
		h.logUp[step] = row
		if err := c.Send(c.Rank()+1, 3000+0, row); err != nil {
			return nil, nil, err
		}
	}
	if c.Rank() > 0 {
		below, err = c.Recv(c.Rank()-1, 3000+0)
		if err != nil {
			return nil, nil, err
		}
	}
	if c.Rank() < c.Size()-1 {
		above, err = c.Recv(c.Rank()+1, 3000+1)
		if err != nil {
			return nil, nil, err
		}
	}
	return below, above, nil
}

// applyUpdate performs the FTCS update with the exact arithmetic of the
// serial reference (problems.HeatGrid.Step), so recovered runs match the
// fault-free trajectory bitwise.
func (h *heatRank) applyUpdate(below, above []float64) {
	nx := h.nx
	nRows := h.jhi - h.jlo
	nu := h.cfg.Nu
	u := h.u
	at := func(i, j int) float64 {
		if i < 0 || i >= nx {
			return 0
		}
		switch {
		case j < 0:
			if below == nil {
				return 0
			}
			return below[i]
		case j >= nRows:
			if above == nil {
				return 0
			}
			return above[i]
		default:
			return u[j*nx+i]
		}
	}
	v := h.uPrev // reuse as the write buffer
	for j := 0; j < nRows; j++ {
		for i := 0; i < nx; i++ {
			cv := u[j*nx+i]
			v[j*nx+i] = cv + nu*(at(i-1, j)+at(i+1, j)+at(i, j-1)+at(i, j+1)-4*cv)
		}
	}
	h.u, h.uPrev = v, u
	h.updates++
	h.ctx.Comm.Compute(6 * float64(nRows*nx))
}

// persist writes the current state to the LFLR store and truncates the
// message logs. One extra persist window is retained: a rank can die
// *before* persisting step s while its neighbours persist *at* s, in
// which case the replacement restores step s−k and needs logs back to it.
func (h *heatRank) persist(step int) {
	h.ctx.Store.Save(h.ctx.Comm, "u", h.u)
	h.ctx.Store.SaveScalar(h.ctx.Comm, "step", float64(step))
	keep := step - h.cfg.PersistEvery
	for s := range h.logDown {
		if s < keep {
			delete(h.logDown, s)
		}
	}
	for s := range h.logUp {
		if s < keep {
			delete(h.logUp, s)
		}
	}
}

// restoreFromStore initialises a respawned rank from its persistent data:
// the paper's recovery-function contract.
func (h *heatRank) restoreFromStore() error {
	u, ok := h.ctx.Store.Restore(h.ctx.Comm, "u")
	if !ok {
		return fmt.Errorf("lflr: rank %d has no persisted state", h.ctx.Comm.Rank())
	}
	sv, _ := h.ctx.Store.RestoreScalar(h.ctx.Comm, "step")
	h.u = u
	h.uPrev = make([]float64, len(u))
	h.updates = int(sv)
	return nil
}

// recoverProtocol is the post-repair consensus every rank (survivor or
// replacement) runs:
//
//  1. all-gather (updates, recovering) pairs;
//  2. target = min updates over survivors — survivors one step ahead roll
//     back via uPrev (they kept the previous state for exactly this);
//  3. neighbours of each recovering rank send their logged halo rows for
//     the steps the replacement must replay;
//  4. the replacement replays locally up to target.
//
// Afterwards every rank holds the state of step `target` and the main
// loop resumes; the redone collective ordering is identical on all ranks.
func (h *heatRank) recoverProtocol() error {
	c := h.ctx.Comm
	rec := 0.0
	if h.ctx.Recovering {
		rec = 1
	}
	info, err := c.Allgather([]float64{float64(h.updates), rec})
	if err != nil {
		return err
	}
	target := math.MaxInt32
	recovering := make(map[int]bool)
	restored := make(map[int]int) // recovering rank -> its restored step
	for r := 0; r < c.Size(); r++ {
		up, isRec := int(info[2*r]), info[2*r+1] == 1
		if isRec {
			recovering[r] = true
			restored[r] = up
			continue
		}
		if up < target {
			target = up
		}
	}
	if len(recovering) == 0 {
		return nil // spurious wakeup; nothing to do
	}

	// Survivors ahead of the consensus roll back one step.
	if !h.ctx.Recovering && h.updates > target {
		h.u, h.uPrev = h.uPrev, h.u
		h.updates--
		if h.updates != target {
			return fmt.Errorf("lflr: rank %d cannot roll back from %d to %d", c.Rank(), h.updates+1, target)
		}
	}

	// Assist: ship halo logs to recovering neighbours, starting from the
	// step each replacement actually restored.
	if !h.ctx.Recovering {
		if down := c.Rank() - 1; down >= 0 && recovering[down] {
			if err := h.sendLog(down, h.logDown, tagRecoverUp, restored[down], target); err != nil {
				return err
			}
		}
		if up := c.Rank() + 1; up < c.Size() && recovering[up] {
			if err := h.sendLog(up, h.logUp, tagRecoverDown, restored[up], target); err != nil {
				return err
			}
		}
	}

	// Replay: the replacement recomputes from its persisted step to the
	// consensus step using the neighbours' logged rows.
	if h.ctx.Recovering {
		if err := h.replay(target); err != nil {
			return err
		}
	}
	return nil
}

// sendLog packages rows for steps [first, target) to a recovering
// neighbour. Layout: [firstStep, count, rows...].
func (h *heatRank) sendLog(dst int, log map[int][]float64, tag, first, target int) error {
	payload := []float64{float64(first), float64(target - first)}
	for s := first; s < target; s++ {
		row, ok := log[s]
		if !ok {
			return fmt.Errorf("lflr: rank %d missing logged halo for step %d", h.ctx.Comm.Rank(), s)
		}
		payload = append(payload, row...)
	}
	return h.ctx.Comm.Send(dst, tag, payload)
}

// replay advances the restored state to the target step using logged
// halos from both neighbours.
func (h *heatRank) replay(target int) error {
	c := h.ctx.Comm
	var belowLog, aboveLog []float64
	var first int
	if c.Rank() > 0 {
		msg, err := c.Recv(c.Rank()-1, tagRecoverDown)
		if err != nil {
			return err
		}
		first = int(msg[0])
		belowLog = msg[2:]
	}
	if c.Rank() < c.Size()-1 {
		msg, err := c.Recv(c.Rank()+1, tagRecoverUp)
		if err != nil {
			return err
		}
		first = int(msg[0])
		aboveLog = msg[2:]
	}
	if h.updates != first && (belowLog != nil || aboveLog != nil) {
		return fmt.Errorf("lflr: restored step %d does not match log start %d", h.updates, first)
	}
	for h.updates < target {
		k := h.updates - first
		var below, above []float64
		if belowLog != nil {
			below = belowLog[k*h.nx : (k+1)*h.nx]
		}
		if aboveLog != nil {
			above = aboveLog[k*h.nx : (k+1)*h.nx]
		}
		h.applyUpdate(below, above)
		h.replaySteps++
	}
	return nil
}
