package lflr

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/la"
)

func runImplicit(t *testing.T, p int, cfg ImplicitConfig) ImplicitResult {
	t.Helper()
	res, err := RunImplicitHeat(heatWorld(p), NewStore(), cfg)
	if err != nil {
		t.Fatalf("RunImplicitHeat: %v", err)
	}
	return res
}

// TestImplicitFaultFree sanity-checks the BE stepper: energy decays and
// CG converges every step.
func TestImplicitFaultFree(t *testing.T) {
	cfg := ImplicitConfig{Nx: 16, Ny: 24, Nu: 1.0, Steps: 10, Coarsen: 2}
	res := runImplicit(t, 4, cfg)
	if len(res.U) != cfg.Nx*cfg.Ny {
		t.Fatalf("field size %d", len(res.U))
	}
	if res.Recoveries != 0 {
		t.Errorf("recoveries = %d", res.Recoveries)
	}
	for _, it := range res.CGIters {
		if it <= 0 || it >= 500 {
			t.Errorf("suspicious CG iteration count %d", it)
		}
	}
	// BE heat decays: max |u| well below the initial max of ~1.
	if m := la.NrmInf(res.U); m >= 1 || m <= 0 {
		t.Errorf("final max %g out of expected decay range", m)
	}
}

// TestImplicitCoarseRecovery verifies the coarse-bootstrap recovery: the
// run completes, and the recovery error shrinks as the replica gets
// finer (Coarsen=1 is an exact replica, so the trajectory matches the
// fault-free run bitwise).
func TestImplicitCoarseRecovery(t *testing.T) {
	base := ImplicitConfig{Nx: 20, Ny: 30, Nu: 1.0, Steps: 12}
	clean := runImplicit(t, 3, base)

	errFor := func(coarsen int) float64 {
		cfg := base
		cfg.Coarsen = coarsen
		cfg.Killer = &fault.StepKiller{Rank: 1, Step: 6}
		res := runImplicit(t, 3, cfg)
		if res.Recoveries != 1 {
			t.Fatalf("coarsen %d: recoveries = %d", coarsen, res.Recoveries)
		}
		return la.NrmInf(la.Sub(res.U, clean.U))
	}

	e1 := errFor(1)
	e2 := errFor(2)
	e4 := errFor(4)
	if e1 > 1e-12 {
		t.Errorf("exact replica should recover exactly, error %g", e1)
	}
	if !(e2 > e1) || !(e4 > e2) {
		t.Errorf("recovery error should grow with coarsening: e1=%g e2=%g e4=%g", e1, e2, e4)
	}
	if e4 > 0.05 {
		t.Errorf("even coarse recovery should stay near the trajectory (diffusion damps the bootstrap error): e4=%g", e4)
	}
	if math.IsNaN(e2) || math.IsNaN(e4) {
		t.Error("NaN in recovered field")
	}
}
