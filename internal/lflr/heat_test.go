package lflr

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/problems"
)

func heatWorld(p int) *comm.World {
	return comm.NewWorld(comm.Config{Ranks: p, Cost: machine.DefaultCostModel(), Seed: 11})
}

func runScenario(t *testing.T, p int, cfg HeatConfig) HeatResult {
	t.Helper()
	res, err := RunHeat(heatWorld(p), NewStore(), cfg)
	if err != nil {
		t.Fatalf("RunHeat: %v", err)
	}
	return res
}

// TestHeatMatchesSerial verifies the distributed fault-free run equals
// the serial reference bitwise.
func TestHeatMatchesSerial(t *testing.T) {
	const nx, ny, steps = 24, 32, 60
	const nu = 0.2
	ref := problems.NewHeatGrid(nx, ny, nu)
	ref.Run(steps)

	res := runScenario(t, 4, HeatConfig{Nx: nx, Ny: ny, Nu: nu, Steps: steps, PersistEvery: 10})
	if len(res.U) != nx*ny {
		t.Fatalf("gathered field has %d values, want %d", len(res.U), nx*ny)
	}
	for i := range res.U {
		if res.U[i] != ref.U[i] {
			t.Fatalf("element %d differs: dist %v vs serial %v", i, res.U[i], ref.U[i])
		}
	}
	if res.Recoveries != 0 {
		t.Errorf("unexpected recoveries: %d", res.Recoveries)
	}
}

// TestHeatRecoversBitwise kills a middle rank mid-run and requires the
// recovered trajectory to match the fault-free one exactly: the
// sender-side log replay recomputes the identical floating-point
// sequence.
func TestHeatRecoversBitwise(t *testing.T) {
	const nx, ny, steps = 16, 40, 100
	const nu = 0.25
	base := HeatConfig{Nx: nx, Ny: ny, Nu: nu, Steps: steps, PersistEvery: 20}

	clean := runScenario(t, 5, base)

	for _, kill := range []struct {
		rank, step, wantReplay int
	}{
		{2, 47, 7},  // mid-window: restored 40, replay 40..47
		{0, 31, 11}, // boundary strip: restored 20
		{4, 60, 20}, // persist boundary: dies before persisting 60 → restored 40
		{3, 99, 19}, // last step: restored 80
	} {
		cfg := base
		cfg.Killer = &fault.StepKiller{Rank: kill.rank, Step: kill.step}
		res := runScenario(t, 5, cfg)
		if res.Recoveries != 1 {
			t.Errorf("kill %v: recoveries = %d, want 1", kill, res.Recoveries)
		}
		for i := range res.U {
			if res.U[i] != clean.U[i] {
				t.Errorf("kill %v: element %d differs after recovery: %v vs %v",
					kill, i, res.U[i], clean.U[i])
				break
			}
		}
		if res.FinalClock <= clean.FinalClock {
			t.Errorf("kill %v: recovery should cost virtual time: %g vs clean %g",
				kill, res.FinalClock, clean.FinalClock)
		}
		if res.ReplaySteps != kill.wantReplay {
			t.Errorf("kill %v: replayed %d steps, want %d", kill, res.ReplaySteps, kill.wantReplay)
		}
	}
}

// TestHeatTwoSequentialFailures kills two different (non-adjacent) ranks
// at different steps.
func TestHeatTwoSequentialFailures(t *testing.T) {
	const nx, ny, steps = 12, 30, 80
	base := HeatConfig{Nx: nx, Ny: ny, Nu: 0.2, Steps: steps, PersistEvery: 10}
	clean := runScenario(t, 5, base)

	cfg := base
	cfg.Killer = &fault.Schedule{Kills: []fault.StepKiller{
		{Rank: 1, Step: 25},
		{Rank: 3, Step: 55},
	}}
	res := runScenario(t, 5, cfg)
	if res.Recoveries != 2 {
		t.Errorf("recoveries = %d, want 2", res.Recoveries)
	}
	for i := range res.U {
		if res.U[i] != clean.U[i] {
			t.Fatalf("element %d differs after two recoveries", i)
		}
	}
}

// TestHeatPersistEveryStep exercises the k=1 corner (replay never needed;
// recovery is a pure restore).
func TestHeatPersistEveryStep(t *testing.T) {
	const nx, ny, steps = 10, 20, 30
	base := HeatConfig{Nx: nx, Ny: ny, Nu: 0.25, Steps: steps, PersistEvery: 1}
	clean := runScenario(t, 3, base)
	cfg := base
	cfg.Killer = &fault.StepKiller{Rank: 1, Step: 15}
	res := runScenario(t, 3, cfg)
	for i := range res.U {
		if res.U[i] != clean.U[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}
