// Package lflr implements the Local-Failure-Local-Recovery programming
// model of paper §II-C, verbatim from its definition: the user "store[s]
// specific data persistently for each MPI process", registers recovery
// behaviour, and on failure "a new process is started and assigned to the
// rank of the failed process", with access to "the persistent data of the
// old process, as well as the neighbors' persistent data". Processes that
// hold valid state are not restarted — only the failed rank recovers,
// with neighbours assisting (here: by replaying logged halo messages).
//
// On top of the model the package provides two complete applications:
// the explicit heat equation with sender-side message logging (the "easy"
// case of §III-C, recovering bitwise-exactly), and the implicit
// backward-Euler heat equation bootstrapped from a coarsened redundant
// replica (§III-C's "redundant storage of coarse model" bullet).
package lflr

import (
	"sync"

	"repro/internal/comm"
	"repro/internal/la"
)

// Store is the per-rank persistent key-value store of the LFLR model.
// Data written here survives the owner's process failure — physically it
// would live in NVM or a neighbour's memory; the simulation keeps it in
// the supervisor's address space and charges the owning rank the
// replication cost of shipping each Save to a partner rank, so virtual
// time reflects the real protocol while the payload takes the reliable
// path.
type Store struct {
	mu   sync.Mutex
	vals map[int]map[string][]float64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{vals: make(map[int]map[string][]float64)}
}

// Save persists data under key for the calling rank, charging the rank
// one neighbour-replication transfer (latency + bandwidth + both
// overheads) of virtual time.
func (s *Store) Save(c *comm.Comm, key string, data []float64) {
	c.AdvanceClock(chargeModel(c, len(data)))
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.vals[c.Rank()]
	if m == nil {
		m = make(map[string][]float64)
		s.vals[c.Rank()] = m
	}
	m[key] = la.Copy(data)
}

// SaveScalar persists a single value.
func (s *Store) SaveScalar(c *comm.Comm, key string, v float64) {
	s.Save(c, key, []float64{v})
}

// Restore fetches the calling rank's persisted data for key, charging
// one replica-fetch transfer. ok is false if nothing was saved.
func (s *Store) Restore(c *comm.Comm, key string) (data []float64, ok bool) {
	s.mu.Lock()
	m := s.vals[c.Rank()]
	var v []float64
	if m != nil {
		v, ok = m[key]
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.AdvanceClock(chargeModel(c, len(v)))
	return la.Copy(v), true
}

// RestoreScalar fetches a single persisted value.
func (s *Store) RestoreScalar(c *comm.Comm, key string) (float64, bool) {
	v, ok := s.Restore(c, key)
	if !ok || len(v) == 0 {
		return 0, false
	}
	return v[0], true
}

// Peek reads rank r's persisted data without charging anyone (harness
// and test use only).
func (s *Store) Peek(rank int, key string) ([]float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.vals[rank]
	if m == nil {
		return nil, false
	}
	v, ok := m[key]
	if !ok {
		return nil, false
	}
	return la.Copy(v), true
}

// chargeModel prices one store transfer of n float64s: a point-to-point
// message to the replica partner plus CPU overhead on both ends.
func chargeModel(c *comm.Comm, n int) float64 {
	cost := c.World().Cost()
	return cost.PointToPoint(8*n) + 2*cost.Overhead
}
