package lflr

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/problems"
)

func runAdvect(t *testing.T, p int, cfg AdvectConfig) AdvectResult {
	t.Helper()
	res, err := RunAdvection(heatWorld(p), NewStore(), cfg)
	if err != nil {
		t.Fatalf("RunAdvection: %v", err)
	}
	return res
}

// TestAdvectionMatchesSerial: the distributed periodic ring equals the
// serial reference bitwise.
func TestAdvectionMatchesSerial(t *testing.T) {
	const n, steps = 240, 150
	const cfl = 0.6
	ref := problems.NewAdvection1D(n, cfl)
	ref.Run(steps)

	res := runAdvect(t, 5, AdvectConfig{N: n, C: cfl, Steps: steps, PersistEvery: 25})
	if len(res.U) != n {
		t.Fatalf("field size %d", len(res.U))
	}
	for i := range res.U {
		if res.U[i] != ref.U[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, res.U[i], ref.U[i])
		}
	}
	if math.Abs(res.Mass-ref.Mass()) > 1e-10 {
		t.Errorf("mass mismatch: %v vs %v", res.Mass, ref.Mass())
	}
}

// TestAdvectionMassConserved: the invariant the guard relies on holds to
// rounding over a long run.
func TestAdvectionMassConserved(t *testing.T) {
	a := problems.NewAdvection1D(300, 0.8)
	m0 := a.Mass()
	a.Run(2000)
	if d := math.Abs(a.Mass() - m0); d > 1e-9*(1+m0) {
		t.Errorf("mass drifted by %g over 2000 steps", d)
	}
}

// TestAdvectionKillRecoversBitwise: process failure on the ring, replay
// from the left neighbour's log, bitwise recovery.
func TestAdvectionKillRecoversBitwise(t *testing.T) {
	const n, steps = 200, 120
	base := AdvectConfig{N: n, C: 0.5, Steps: steps, PersistEvery: 20}
	clean := runAdvect(t, 4, base)

	for _, kill := range []struct{ rank, step int }{
		{2, 47},
		{0, 31}, // rank 0's left neighbour is rank P-1: the ring wrap path
		{3, 119},
	} {
		cfg := base
		cfg.Killer = &fault.StepKiller{Rank: kill.rank, Step: kill.step}
		res := runAdvect(t, 4, cfg)
		if res.Recoveries != 1 {
			t.Errorf("kill %v: recoveries = %d", kill, res.Recoveries)
		}
		for i := range res.U {
			if res.U[i] != clean.U[i] {
				t.Errorf("kill %v: cell %d differs", kill, i)
				break
			}
		}
	}
}

// TestAdvectionMassGuardIsTwoSided: unlike the heat app's energy-decay
// guard, the mass-equality guard catches both upward AND downward flips.
func TestAdvectionMassGuardIsTwoSided(t *testing.T) {
	const n, steps = 200, 120
	base := AdvectConfig{N: n, C: 0.5, Steps: steps, PersistEvery: 20, MassGuard: true}
	clean := runAdvect(t, 4, base)
	if clean.SDCDetections != 0 {
		t.Fatalf("false positives: %d", clean.SDCDetections)
	}

	// u values live in [1-ε, 2+ε]: exponent field makes bit 62 an upward
	// flip and bit 56 (a set bit of exponent 1023/1024) a downward one.
	for _, tc := range []struct {
		name string
		bit  int
	}{
		{"upward", 62},
		{"downward", 54},
	} {
		cfg := base
		cfg.SDC = &SDCEvent{Rank: 1, Step: 63, Index: 4, Bit: tc.bit}
		res := runAdvect(t, 4, cfg)
		if res.SDCDetections != 1 {
			t.Errorf("%s flip (bit %d): detections = %d, want 1", tc.name, tc.bit, res.SDCDetections)
			continue
		}
		for i := range res.U {
			if res.U[i] != clean.U[i] {
				t.Errorf("%s flip: cell %d differs after rollback", tc.name, i)
				break
			}
		}
	}
}

// TestAdvectionGuardOffCorrupts: without the guard the downward flip
// silently pollutes the result — the contrast F10 tabulates.
func TestAdvectionGuardOffCorrupts(t *testing.T) {
	const n, steps = 200, 120
	base := AdvectConfig{N: n, C: 0.5, Steps: steps, PersistEvery: 20}
	clean := runAdvect(t, 4, base)
	cfg := base
	cfg.SDC = &SDCEvent{Rank: 1, Step: 63, Index: 4, Bit: 54}
	res := runAdvect(t, 4, cfg)
	same := true
	for i := range res.U {
		if res.U[i] != clean.U[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("unguarded flip should corrupt the field")
	}
}
