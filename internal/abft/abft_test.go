package abft

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/problems"
)

func randomPair(rng *machine.RNG, m, k, n int) (*la.Dense, *la.Dense) {
	return la.RandomDense(m, k, rng.Float64), la.RandomDense(k, n, rng.Float64)
}

func TestCheckedCleanProduct(t *testing.T) {
	rng := machine.NewRNG(1)
	a, b := randomPair(rng, 12, 9, 15)
	want := a.MatMul(b)
	got, rep := Checked(a, b, nil, 0)
	if rep.Detected {
		t.Fatalf("false positive: %+v", rep)
	}
	if !got.Equal(want, 1e-12) {
		t.Error("checked product differs from plain product")
	}
}

// TestCheckedCorrectsAnyDataElement corrupts every position of the data
// block in turn with a large flip; each must be detected, located, and
// corrected.
func TestCheckedCorrectsAnyDataElement(t *testing.T) {
	rng := machine.NewRNG(2)
	const m, k, n = 6, 5, 7
	a, b := randomPair(rng, m, k, n)
	want := a.MatMul(b)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			inject := func(cf *la.Dense) {
				cf.Set(i, j, cf.At(i, j)+1000)
			}
			got, rep := Checked(a, b, inject, 0)
			if !rep.Detected || !rep.Located || !rep.Corrected {
				t.Fatalf("(%d,%d): report %+v", i, j, rep)
			}
			if rep.Row != i || rep.Col != j {
				t.Fatalf("(%d,%d): located (%d,%d)", i, j, rep.Row, rep.Col)
			}
			if !got.Equal(want, 1e-9) {
				t.Fatalf("(%d,%d): correction wrong", i, j)
			}
		}
	}
}

// TestCheckedBitFlips injects random real bit flips; upward flips must be
// detected and corrected, tiny ones may legitimately pass below the
// checksum tolerance.
func TestCheckedBitFlips(t *testing.T) {
	rng := machine.NewRNG(3)
	const m, k, n = 10, 8, 10
	a, b := randomPair(rng, m, k, n)
	want := a.MatMul(b)

	detected, corrected := 0, 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		i, j := rng.Intn(m), rng.Intn(n)
		bit := fault.AnyBit.PickBit(rng)
		var delta float64
		inject := func(cf *la.Dense) {
			old := cf.At(i, j)
			cf.Set(i, j, fault.FlipBit(old, bit))
			delta = math.Abs(cf.At(i, j) - old)
		}
		got, rep := Checked(a, b, inject, 0)
		if rep.Detected {
			detected++
		}
		if rep.Corrected {
			corrected++
			if !got.Equal(want, 1e-8) {
				t.Fatalf("trial %d: corrected product still wrong (delta %g)", trial, delta)
			}
		}
	}
	if detected < trials/3 {
		t.Errorf("detected only %d/%d bit flips", detected, trials)
	}
	if corrected < detected*9/10 {
		t.Errorf("corrected %d of %d detected", corrected, detected)
	}
	t.Logf("bit flips: detected %d/%d, corrected %d", detected, trials, corrected)
}

// TestCheckedChecksumElementCorruption: corrupting a checksum entry (not
// the data block) must be detected but needs no data correction.
func TestCheckedChecksumElementCorruption(t *testing.T) {
	rng := machine.NewRNG(4)
	const m, k, n = 5, 4, 6
	a, b := randomPair(rng, m, k, n)
	want := a.MatMul(b)
	inject := func(cf *la.Dense) {
		cf.Set(2, n, cf.At(2, n)+100) // row-checksum column entry
	}
	got, rep := Checked(a, b, inject, 0)
	if !rep.Detected {
		t.Error("checksum corruption not detected")
	}
	if rep.Corrected {
		t.Error("nothing in the data block needed correction")
	}
	if !got.Equal(want, 1e-12) {
		t.Error("data block should be intact")
	}
}

func TestCheckedSpMVDetects(t *testing.T) {
	a := problems.Poisson2D(12, 12)
	cs := a.ColSums()
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y, ok, rel := CheckedSpMV(a, x, cs, 0)
	if !ok {
		t.Fatalf("false positive: rel %g", rel)
	}
	// Corrupt and re-verify manually through the checksum identity.
	y[7] += 10
	lhs := la.Sum(y)
	rhs := la.Dot(cs, x)
	if math.Abs(lhs-rhs) < 1 {
		t.Error("corruption should break the checksum identity")
	}
}

// TestCheckedTwoCorruptions: two corrupted data elements in different
// rows and columns are detected but cannot be located by single-error
// checksums — the verifier must say so rather than "correct" wrongly.
func TestCheckedTwoCorruptions(t *testing.T) {
	rng := machine.NewRNG(6)
	a, b := randomPair(rng, 8, 6, 9)
	inject := func(cf *la.Dense) {
		cf.Set(1, 2, cf.At(1, 2)+100)
		cf.Set(4, 7, cf.At(4, 7)-50)
	}
	_, rep := Checked(a, b, inject, 0)
	if !rep.Detected {
		t.Fatal("two corruptions not detected")
	}
	if rep.Located || rep.Corrected {
		t.Errorf("double corruption must not be located/corrected as single: %+v", rep)
	}
	if len(rep.BadRows) != 2 || len(rep.BadCols) != 2 {
		t.Errorf("bad rows %v, bad cols %v", rep.BadRows, rep.BadCols)
	}
}

// TestCheckedSameRowCorruptions: two flips in the same row break one row
// checksum and two column checksums — detected, not located.
func TestCheckedSameRowCorruptions(t *testing.T) {
	rng := machine.NewRNG(7)
	a, b := randomPair(rng, 6, 5, 7)
	inject := func(cf *la.Dense) {
		cf.Set(3, 1, cf.At(3, 1)+10)
		cf.Set(3, 5, cf.At(3, 5)+10)
	}
	_, rep := Checked(a, b, inject, 0)
	if !rep.Detected || rep.Corrected {
		t.Errorf("same-row double corruption: %+v", rep)
	}
}

func TestVerifyToleranceScaling(t *testing.T) {
	// Large well-conditioned product: the default tolerance must not
	// false-positive from rounding.
	rng := machine.NewRNG(5)
	a, b := randomPair(rng, 64, 64, 64)
	_, rep := Checked(a, b, nil, 0)
	if rep.Detected {
		t.Errorf("rounding false positive on 64³ product: %+v", rep)
	}
}
