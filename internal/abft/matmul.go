// Package abft implements classic algorithm-based fault tolerance after
// Huang and Abraham (1984), the lineage the paper cites as [4] and argues
// is subsumed by skeptical programming (§III-A): the checksum metadata
// used to recover state "can also be used to detect anomalous behavior".
//
// The scheme: augment A with a column-checksum row (eᵀA) and B with a
// row-checksum column (B·e). The product of the augmented matrices then
// carries both checksums of C = A·B:
//
//	[A; eᵀA] · [B | B·e] = [C, C·e; eᵀC, eᵀC·e]
//
// A single corrupted element C(i,j) violates exactly row-checksum i and
// column-checksum j, which both detects and locates it; the row checksum
// then reconstructs the correct value. This is detection *and* correction
// from pure arithmetic invariants — no replication, no checkpoint.
package abft

import (
	"math"

	"repro/internal/la"
)

// Report describes what the verifier found in one checked product.
type Report struct {
	Detected  bool
	Located   bool
	Row, Col  int // location of the (single) corrupted element
	Corrected bool
	BadRows   []int // row checksums that failed
	BadCols   []int // column checksums that failed
}

// Checked multiplies a·b with Huang–Abraham checksums. The inject
// callback (may be nil) is applied to the full augmented product before
// verification, modelling faults that strike during or after the
// multiplication. It returns the (possibly corrected) product C, and the
// report. tol is the relative checksum tolerance; pass 0 for a default
// scaled to the matrix magnitudes.
func Checked(a, b *la.Dense, inject func(c *la.Dense), tol float64) (*la.Dense, Report) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if b.Rows != k {
		panic("abft: shape mismatch")
	}

	// Build augmented matrices.
	af := la.NewDense(m+1, k)
	for i := 0; i < m; i++ {
		copy(af.Row(i), a.Row(i))
	}
	for j := 0; j < k; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += a.At(i, j)
		}
		af.Set(m, j, s)
	}
	bf := la.NewDense(k, n+1)
	for i := 0; i < k; i++ {
		copy(bf.Row(i)[:n], b.Row(i))
		bf.Set(i, n, la.Sum(b.Row(i)))
	}

	// The checked product.
	cf := af.MatMul(bf)
	if inject != nil {
		inject(cf)
	}
	return Verify(cf, m, n, tol)
}

// Verify checks the (m+1)×(n+1) augmented product cf, attempting to
// locate and correct a single corrupted data element. It returns the
// corrected m×n data block and the report.
func Verify(cf *la.Dense, m, n int, tol float64) (*la.Dense, Report) {
	var rep Report
	if tol <= 0 {
		// Scale to the magnitudes involved: checksum comparisons lose
		// ~‖row‖·ε to rounding.
		maxAbs := 0.0
		for _, v := range cf.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tol = 1e-10 * (1 + maxAbs) * float64(n+1)
	}

	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += cf.At(i, j)
		}
		if math.Abs(s-cf.At(i, n)) > tol {
			rep.BadRows = append(rep.BadRows, i)
		}
	}
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += cf.At(i, j)
		}
		if math.Abs(s-cf.At(m, j)) > tol {
			rep.BadCols = append(rep.BadCols, j)
		}
	}
	rep.Detected = len(rep.BadRows) > 0 || len(rep.BadCols) > 0

	// Single-element data corruption: one bad row and one bad column.
	if len(rep.BadRows) == 1 && len(rep.BadCols) == 1 {
		i, j := rep.BadRows[0], rep.BadCols[0]
		rep.Located = true
		rep.Row, rep.Col = i, j
		// Reconstruct from the row checksum.
		s := cf.At(i, n)
		for j2 := 0; j2 < n; j2++ {
			if j2 != j {
				s -= cf.At(i, j2)
			}
		}
		cf.Set(i, j, s)
		rep.Corrected = true
	}
	// A corrupted checksum element itself shows as one bad row XOR one
	// bad column; the data block is intact, so nothing to correct.

	out := la.NewDense(m, n)
	for i := 0; i < m; i++ {
		copy(out.Row(i), cf.Row(i)[:n])
	}
	return out, rep
}

// CheckedSpMV computes y = A·x with a checksum test: eᵀy must equal
// (eᵀA)·x. colSums is the precomputed eᵀA (see la.CSR.ColSums). It
// returns y, whether the checksum held, and the relative discrepancy.
// Detection-only (a single checksum cannot locate), matching how
// iterative solvers use it: detect, then recompute the cheap kernel.
func CheckedSpMV(a *la.CSR, x, colSums []float64, tol float64) (y []float64, ok bool, rel float64) {
	y = a.MatVec(x, nil)
	lhs := la.Sum(y)
	rhs := la.Dot(colSums, x)
	scale := math.Max(math.Abs(lhs), math.Abs(rhs))
	if scale == 0 {
		return y, true, 0
	}
	if tol <= 0 {
		tol = 1e-10 * float64(a.Rows)
	}
	rel = math.Abs(lhs-rhs) / scale
	return y, rel <= tol, rel
}
