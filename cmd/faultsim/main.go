// Command faultsim runs the LFLR heat equation with a scripted process
// kill and prints the recovery trace: the concrete §II-C/§III-C scenario
// of the paper, end to end. Run `faultsim -h` for the full flag set —
// the help text is generated from the flags the program actually parses
// (and a test pins every usage snippet in this comment and the README
// against them).
//
// The three scenarios:
//
//	faultsim -ranks 8 -steps 400 -kill-rank 3 -kill-step 237 -persist 20
//	faultsim -implicit -coarsen 4
//	faultsim -sdc-bit 52 -guard
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/lflr"
	"repro/internal/machine"
)

// options carries every flag faultsim parses; newFlags is the single
// source of truth the help text and the usage-snippet test derive from.
type options struct {
	ranks    int
	nx, ny   int
	steps    int
	persist  int
	killRank int
	killStep int
	implicit bool
	coarsen  int
	sdcBit   int
	sdcRank  int
	sdcStep  int
	guard    bool
	seed     uint64
}

// newFlags builds the flag set. Keeping construction in one function is
// what lets main_test.go verify that every documented invocation parses.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	fs.IntVar(&o.ranks, "ranks", 8, "number of simulated MPI ranks")
	fs.IntVar(&o.nx, "nx", 48, "grid width")
	fs.IntVar(&o.ny, "ny", 64, "grid height")
	fs.IntVar(&o.steps, "steps", 400, "time steps")
	fs.IntVar(&o.persist, "persist", 20, "persist state every k steps")
	fs.IntVar(&o.killRank, "kill-rank", 3, "rank to kill (-1 for none)")
	fs.IntVar(&o.killStep, "kill-step", 237, "step at which the rank dies")
	fs.BoolVar(&o.implicit, "implicit", false, "use the backward-Euler solver with coarse-replica recovery")
	fs.IntVar(&o.coarsen, "coarsen", 2, "implicit mode: replica coarsening factor")
	fs.IntVar(&o.sdcBit, "sdc-bit", -1, "silent-corruption mode: flip this bit of one field value (-1 for none)")
	fs.IntVar(&o.sdcRank, "sdc-rank", 2, "silent-corruption mode: victim rank")
	fs.IntVar(&o.sdcStep, "sdc-step", 200, "silent-corruption mode: step of the flip")
	fs.BoolVar(&o.guard, "guard", true, "arm the skeptical energy-conservation guard (explicit mode)")
	fs.Uint64Var(&o.seed, "seed", 1, "world seed")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: faultsim [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the LFLR heat equation under a scripted process kill (default),\n")
		fmt.Fprintf(fs.Output(), "coarse-replica implicit recovery (-implicit), or a silent bit flip\n")
		fmt.Fprintf(fs.Output(), "caught by the energy guard (-sdc-bit).\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

func main() {
	fs, o := newFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}

	cfg := comm.Config{Ranks: o.ranks, Cost: machine.DefaultCostModel(), Seed: o.seed}

	if o.implicit {
		runImplicit(cfg, o.nx, o.ny, o.steps, o.coarsen, o.killRank, o.killStep)
		return
	}

	var killer lflr.Killer
	if o.killRank >= 0 {
		killer = &fault.StepKiller{Rank: o.killRank, Step: o.killStep}
	}
	var sdc *lflr.SDCEvent
	if o.sdcBit >= 0 {
		sdc = &lflr.SDCEvent{Rank: o.sdcRank, Step: o.sdcStep, Index: 7, Bit: o.sdcBit}
	}
	base := lflr.HeatConfig{Nx: o.nx, Ny: o.ny, Nu: 0.25, Steps: o.steps, PersistEvery: o.persist, EnergyGuard: o.guard}
	clean, err := lflr.RunHeat(comm.NewWorld(cfg), lflr.NewStore(), base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clean run:", err)
		os.Exit(1)
	}
	faultyCfg := base
	faultyCfg.Killer = killer
	faultyCfg.SDC = sdc
	res, err := lflr.RunHeat(comm.NewWorld(cfg), lflr.NewStore(), faultyCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulty run:", err)
		os.Exit(1)
	}

	fmt.Printf("explicit heat %dx%d, %d steps on %d ranks, persist every %d\n",
		o.nx, o.ny, o.steps, o.ranks, o.persist)
	if o.killRank >= 0 {
		fmt.Printf("kill: rank %d at step %d\n", o.killRank, o.killStep)
	}
	if sdc != nil {
		fmt.Printf("sdc: bit %d of rank %d's field at step %d (guard %v)\n", o.sdcBit, o.sdcRank, o.sdcStep, o.guard)
		fmt.Printf("sdc detections:        %d (rollback of %d steps)\n", res.SDCDetections, res.RollbackSteps)
	}
	fmt.Printf("recoveries:            %d\n", res.Recoveries)
	fmt.Printf("replayed steps:        %d\n", res.ReplaySteps)
	exact := true
	for i := range res.U {
		if res.U[i] != clean.U[i] {
			exact = false
			break
		}
	}
	fmt.Printf("bitwise == fault-free: %v\n", exact)
	fmt.Printf("final energy:          %.9g\n", res.Energy)
	fmt.Printf("virtual time:          %.6g s (fault-free %.6g s, recovery cost %.3g s)\n",
		res.FinalClock, clean.FinalClock, res.FinalClock-clean.FinalClock)
}

func runImplicit(cfg comm.Config, nx, ny, steps, coarsen, killRank, killStep int) {
	var killer lflr.Killer
	if killRank >= 0 {
		killer = &fault.StepKiller{Rank: killRank, Step: killStep}
	}
	base := lflr.ImplicitConfig{Nx: nx, Ny: ny, Nu: 1.0, Steps: steps, Coarsen: coarsen}
	clean, err := lflr.RunImplicitHeat(comm.NewWorld(cfg), lflr.NewStore(), base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clean run:", err)
		os.Exit(1)
	}
	cfgK := base
	cfgK.Killer = killer
	res, err := lflr.RunImplicitHeat(comm.NewWorld(cfg), lflr.NewStore(), cfgK)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulty run:", err)
		os.Exit(1)
	}
	fmt.Printf("implicit (BE) heat %dx%d, %d steps, coarsen %d\n", nx, ny, steps, coarsen)
	fmt.Printf("recoveries:     %d\n", res.Recoveries)
	fmt.Printf("replica floats: %d per rank\n", res.ReplicaFloats)
	maxDiff := 0.0
	for i := range res.U {
		d := res.U[i] - clean.U[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |u - u_clean| after recovery: %.3e\n", maxDiff)
	fmt.Printf("virtual time: %.6g s (fault-free %.6g s)\n", res.FinalClock, clean.FinalClock)
}
