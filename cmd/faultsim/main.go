// Command faultsim runs the LFLR heat equation with a scripted process
// kill and prints the recovery trace: the concrete §II-C/§III-C scenario
// of the paper, end to end.
//
// Usage:
//
//	faultsim -ranks 8 -steps 400 -kill-rank 3 -kill-step 237 -persist 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/comm"
	"repro/internal/fault"
	"repro/internal/lflr"
	"repro/internal/machine"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of simulated MPI ranks")
	nx := flag.Int("nx", 48, "grid width")
	ny := flag.Int("ny", 64, "grid height")
	steps := flag.Int("steps", 400, "time steps")
	persist := flag.Int("persist", 20, "persist state every k steps")
	killRank := flag.Int("kill-rank", 3, "rank to kill (-1 for none)")
	killStep := flag.Int("kill-step", 237, "step at which the rank dies")
	implicit := flag.Bool("implicit", false, "use the backward-Euler solver with coarse-replica recovery")
	coarsen := flag.Int("coarsen", 2, "implicit mode: replica coarsening factor")
	sdcBit := flag.Int("sdc-bit", -1, "silent-corruption mode: flip this bit of one field value (-1 for none)")
	sdcRank := flag.Int("sdc-rank", 2, "silent-corruption mode: victim rank")
	sdcStep := flag.Int("sdc-step", 200, "silent-corruption mode: step of the flip")
	guard := flag.Bool("guard", true, "arm the skeptical energy-conservation guard (explicit mode)")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()

	cfg := comm.Config{Ranks: *ranks, Cost: machine.DefaultCostModel(), Seed: *seed}

	if *implicit {
		runImplicit(cfg, *nx, *ny, *steps, *coarsen, *killRank, *killStep)
		return
	}

	var killer lflr.Killer
	if *killRank >= 0 {
		killer = &fault.StepKiller{Rank: *killRank, Step: *killStep}
	}
	var sdc *lflr.SDCEvent
	if *sdcBit >= 0 {
		sdc = &lflr.SDCEvent{Rank: *sdcRank, Step: *sdcStep, Index: 7, Bit: *sdcBit}
	}
	base := lflr.HeatConfig{Nx: *nx, Ny: *ny, Nu: 0.25, Steps: *steps, PersistEvery: *persist, EnergyGuard: *guard}
	clean, err := lflr.RunHeat(comm.NewWorld(cfg), lflr.NewStore(), base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clean run:", err)
		os.Exit(1)
	}
	faultyCfg := base
	faultyCfg.Killer = killer
	faultyCfg.SDC = sdc
	res, err := lflr.RunHeat(comm.NewWorld(cfg), lflr.NewStore(), faultyCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulty run:", err)
		os.Exit(1)
	}

	fmt.Printf("explicit heat %dx%d, %d steps on %d ranks, persist every %d\n",
		*nx, *ny, *steps, *ranks, *persist)
	if *killRank >= 0 {
		fmt.Printf("kill: rank %d at step %d\n", *killRank, *killStep)
	}
	if sdc != nil {
		fmt.Printf("sdc: bit %d of rank %d's field at step %d (guard %v)\n", *sdcBit, *sdcRank, *sdcStep, *guard)
		fmt.Printf("sdc detections:        %d (rollback of %d steps)\n", res.SDCDetections, res.RollbackSteps)
	}
	fmt.Printf("recoveries:            %d\n", res.Recoveries)
	fmt.Printf("replayed steps:        %d\n", res.ReplaySteps)
	exact := true
	for i := range res.U {
		if res.U[i] != clean.U[i] {
			exact = false
			break
		}
	}
	fmt.Printf("bitwise == fault-free: %v\n", exact)
	fmt.Printf("final energy:          %.9g\n", res.Energy)
	fmt.Printf("virtual time:          %.6g s (fault-free %.6g s, recovery cost %.3g s)\n",
		res.FinalClock, clean.FinalClock, res.FinalClock-clean.FinalClock)
}

func runImplicit(cfg comm.Config, nx, ny, steps, coarsen, killRank, killStep int) {
	var killer lflr.Killer
	if killRank >= 0 {
		killer = &fault.StepKiller{Rank: killRank, Step: killStep}
	}
	base := lflr.ImplicitConfig{Nx: nx, Ny: ny, Nu: 1.0, Steps: steps, Coarsen: coarsen}
	clean, err := lflr.RunImplicitHeat(comm.NewWorld(cfg), lflr.NewStore(), base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clean run:", err)
		os.Exit(1)
	}
	cfgK := base
	cfgK.Killer = killer
	res, err := lflr.RunImplicitHeat(comm.NewWorld(cfg), lflr.NewStore(), cfgK)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faulty run:", err)
		os.Exit(1)
	}
	fmt.Printf("implicit (BE) heat %dx%d, %d steps, coarsen %d\n", nx, ny, steps, coarsen)
	fmt.Printf("recoveries:     %d\n", res.Recoveries)
	fmt.Printf("replica floats: %d per rank\n", res.ReplicaFloats)
	maxDiff := 0.0
	for i := range res.U {
		d := res.U[i] - clean.U[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |u - u_clean| after recovery: %.3e\n", maxDiff)
	fmt.Printf("virtual time: %.6g s (fault-free %.6g s)\n", res.FinalClock, clean.FinalClock)
}
