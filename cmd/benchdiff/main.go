// Command benchdiff is the perf harness and regression gate of this
// reproduction. It has two modes:
//
//	benchdiff run -label nightly -out BENCH_nightly.json
//	    runs every registered experiment (concurrently, one isolated
//	    simulated world set per experiment) plus the kernel
//	    micro-benchmarks, and writes a canonical BENCH_<label>.json with
//	    wall-clock, allocs/op, virtual-time and comm/flop metrics.
//
//	benchdiff compare BENCH_baseline.json BENCH_new.json
//	    exits non-zero if the new report regresses the baseline beyond
//	    the per-metric thresholds: kernel ns/op (+25% default), kernel
//	    allocs/op (any growth), experiment virtual time (+10% default,
//	    fully deterministic).
//
// Quick mode (-quick) trims the scaling sweeps to their smallest scales
// and shortens kernel timing; CI runs it on every push against the
// committed BENCH_baseline.json. Refresh the baseline with:
//
//	go run ./cmd/benchdiff run -quick -label baseline -out BENCH_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "compare":
		compareCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchdiff run [-label L] [-out FILE] [-quick] [-repeat N] [-workers N]
                [-benchtime D] [-seed S] [-exp F1,F2] [-kernels-only] [-exps-only] [-q]
  benchdiff compare [-ns F] [-allocs F] [-vt F] BASELINE.json CURRENT.json`)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	label := fs.String("label", "dev", "report label")
	out := fs.String("out", "", "output path (default BENCH_<label>.json)")
	quick := fs.Bool("quick", false, "smallest experiment scales, short kernel timing")
	repeat := fs.Int("repeat", 0, "experiment repetitions (default 3, quick 1)")
	workers := fs.Int("workers", 0, "experiment worker pool size (default GOMAXPROCS)")
	benchtime := fs.Duration("benchtime", 0, "per-kernel time target (default 1s, quick 100ms)")
	seed := fs.Uint64("seed", 1, "experiment master seed")
	exps := fs.String("exp", "", "comma-separated experiment IDs (default all)")
	kernelsOnly := fs.Bool("kernels-only", false, "skip experiments")
	expsOnly := fs.Bool("exps-only", false, "skip kernel micro-benchmarks")
	quiet := fs.Bool("q", false, "suppress progress output")
	fs.Parse(args)

	opts := bench.HarnessOptions{
		Label:       *label,
		Seed:        *seed,
		Quick:       *quick,
		Repeat:      *repeat,
		Workers:     *workers,
		BenchTime:   *benchtime,
		SkipKernels: *expsOnly,
		SkipExps:    *kernelsOnly,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *exps != "" {
		for _, id := range strings.Split(*exps, ",") {
			opts.Experiments = append(opts.Experiments, strings.TrimSpace(id))
		}
	}

	start := time.Now()
	rep, err := bench.RunHarness(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := bench.WriteReport(rep, path); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d results in %.1fs (quick=%v, go=%s)\n",
		path, len(rep.Results), time.Since(start).Seconds(), rep.Quick, rep.GoVersion)
}

func compareCmd(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	def := bench.DefaultThresholds()
	ns := fs.Float64("ns", def.NsPerOp, "allowed relative kernel ns/op growth (<0 disables)")
	allocs := fs.Float64("allocs", def.AllocsPerOp, "allowed absolute kernel allocs/op growth (<0 disables)")
	vt := fs.Float64("vt", def.VirtualTime, "allowed relative experiment virtual-time growth (<0 disables)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		os.Exit(2)
	}
	base, err := bench.ReadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := bench.ReadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	regs, err := bench.Compare(base, cur, bench.Thresholds{NsPerOp: *ns, AllocsPerOp: *allocs, VirtualTime: *vt})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	bench.RenderComparison(os.Stdout, base, cur, regs)
	if len(regs) > 0 {
		os.Exit(1)
	}
}
