package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/usagecheck"
)

// TestDocumentedInvocationsParse pins every resilient-bench snippet in
// this command's doc comment, the README and the architecture doc
// against the real flag set, so the usage text cannot drift from the
// flags main parses.
func TestDocumentedInvocationsParse(t *testing.T) {
	sources := []string{"main.go", "../../README.md", "../../docs/ARCHITECTURE.md"}
	seen := 0
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		text := string(data)
		seen += len(usagecheck.Snippets(text, "resilient-bench"))
		for _, p := range usagecheck.Verify(text, "resilient-bench", func() *flag.FlagSet {
			fs, _ := newFlags()
			return fs
		}) {
			t.Errorf("%s: %s", path, p)
		}
	}
	if seen == 0 {
		t.Error("no documented resilient-bench invocations found — the drift test is checking nothing")
	}
}

// TestDefaultsAreSane guards the values the doc comment advertises.
func TestDefaultsAreSane(t *testing.T) {
	fs, o := newFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.exp != "fast" || o.seed != 1 || o.list {
		t.Errorf("defaults drifted: %+v", o)
	}
}

// TestSelectIDs covers the -exp selector against the live registry:
// "fast" excludes every Slow experiment, "all" is the whole index, and
// explicit lists pass through trimmed.
func TestSelectIDs(t *testing.T) {
	reg := bench.Registry()
	if got := selectIDs("all", reg); len(got) != len(bench.IDs()) {
		t.Errorf("all selected %d of %d", len(got), len(bench.IDs()))
	}
	fast := selectIDs("fast", reg)
	if len(fast) == 0 {
		t.Fatal("fast selected nothing")
	}
	for _, id := range fast {
		if reg[id].Slow {
			t.Errorf("fast selected slow experiment %s", id)
		}
	}
	got := selectIDs("F1, T4", reg)
	if len(got) != 2 || got[0] != "F1" || got[1] != "T4" {
		t.Errorf("list selection: %v", got)
	}
}
