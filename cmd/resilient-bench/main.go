// Command resilient-bench regenerates the experiment tables of this
// reproduction (DESIGN.md §3). Each experiment instantiates one claim of
// Heroux, "Toward Resilient Algorithms and Applications" (HPDC 2013).
//
// Usage:
//
//	resilient-bench -exp F1          # one experiment
//	resilient-bench -exp F1,F6,T4    # a list
//	resilient-bench -exp all         # everything (minutes)
//	resilient-bench -exp fast        # everything except the scaling sweeps
//	resilient-bench -list            # show the index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	expFlag := flag.String("exp", "fast", "experiment ID(s): comma-separated, 'all', or 'fast'")
	seed := flag.Uint64("seed", 1, "master seed for fault injection and noise")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	reg := bench.Registry()
	if *list {
		for _, id := range bench.IDs() {
			slow := ""
			if reg[id].Slow {
				slow = " (slow)"
			}
			fmt.Printf("  %s%s\n", id, slow)
		}
		return
	}

	var ids []string
	switch *expFlag {
	case "all":
		ids = bench.IDs()
	case "fast":
		for _, id := range bench.IDs() {
			if !reg[id].Slow {
				ids = append(ids, id)
			}
		}
	default:
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		table, err := bench.Run(id, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
	}
}
