// Command resilient-bench regenerates the experiment tables of this
// reproduction (the registry is documented in docs/BENCHMARKING.md).
// Each experiment instantiates one claim of
// Heroux, "Toward Resilient Algorithms and Applications" (HPDC 2013).
// Run `resilient-bench -h` for the full flag set — the help text is
// generated from the flags the program actually parses (and a test pins
// every usage snippet in this comment and the README against them).
//
// Usage:
//
//	resilient-bench -exp F1          # one experiment
//	resilient-bench -exp F1,F6,T4    # a list
//	resilient-bench -exp all         # everything (minutes)
//	resilient-bench -exp fast        # everything except the scaling sweeps
//	resilient-bench -list            # show the index
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// options carries every flag resilient-bench parses; newFlags is the
// single source of truth the help text and the usage-snippet test
// derive from.
type options struct {
	exp  string
	seed uint64
	list bool
}

// newFlags builds the flag set. Keeping construction in one function is
// what lets main_test.go verify that every documented invocation parses.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("resilient-bench", flag.ContinueOnError)
	fs.StringVar(&o.exp, "exp", "fast", "experiment ID(s): comma-separated, 'all', or 'fast'")
	fs.Uint64Var(&o.seed, "seed", 1, "master seed for fault injection and noise")
	fs.BoolVar(&o.list, "list", false, "list experiments and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: resilient-bench [flags]\n\n")
		fmt.Fprintf(fs.Output(), "Regenerates the experiment tables; each experiment instantiates one\n")
		fmt.Fprintf(fs.Output(), "claim of the paper (run -list for the index).\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

func main() {
	fs, o := newFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}

	reg := bench.Registry()
	if o.list {
		for _, id := range bench.IDs() {
			slow := ""
			if reg[id].Slow {
				slow = " (slow)"
			}
			fmt.Printf("  %s%s\n", id, slow)
		}
		return
	}

	for _, id := range selectIDs(o.exp, reg) {
		table, err := bench.Run(id, o.seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		table.Render(os.Stdout)
	}
}

// selectIDs resolves the -exp value to experiment IDs: "all", "fast"
// (everything not marked Slow), or a comma-separated list.
func selectIDs(exp string, reg map[string]bench.Experiment) []string {
	var ids []string
	switch exp {
	case "all":
		ids = bench.IDs()
	case "fast":
		for _, id := range bench.IDs() {
			if !reg[id].Slow {
				ids = append(ids, id)
			}
		}
	default:
		for _, id := range strings.Split(exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	return ids
}
