package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/usagecheck"
)

// TestDocumentedInvocationsParse pins every campaign snippet in this
// command's doc comment, the README and docs/CAMPAIGNS.md against the
// real per-mode flag sets, so the usage text cannot drift from the
// flags main parses. Run-mode snippets key on "campaign" itself;
// compare/report snippets key on the mode token immediately before
// their first flag (see cmd/solverd for the same pattern).
func TestDocumentedInvocationsParse(t *testing.T) {
	modes := map[string]func() *flag.FlagSet{
		"campaign": func() *flag.FlagSet { fs, _ := newFlags(); return fs },
		"compare":  func() *flag.FlagSet { fs, _ := newCompareFlags(); return fs },
		"report":   func() *flag.FlagSet { fs, _ := newReportFlags(); return fs },
	}
	sources := []string{"main.go", "../../README.md", "../../docs/CAMPAIGNS.md", "../../docs/ARCHITECTURE.md", "../../docs/OBSERVABILITY.md"}
	seen := 0
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		text := string(data)
		for mode, mk := range modes {
			seen += len(usagecheck.Snippets(text, mode))
			for _, p := range usagecheck.Verify(text, mode, mk) {
				t.Errorf("%s: %s", path, p)
			}
		}
	}
	if seen == 0 {
		t.Error("no documented campaign invocations found — the drift test is checking nothing")
	}
}

// TestDefaultsAreSane guards the values the doc comment advertises.
func TestDefaultsAreSane(t *testing.T) {
	fs, o := newFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.spec != "quick" || o.label != "dev" || o.shard != "0/1" || o.out != "" || o.resume || o.noAgg || o.aggOnly || o.trace != "" || o.chrome {
		t.Errorf("defaults drifted: %+v", o)
	}
	cfs, co := newCompareFlags()
	if err := cfs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	def := campaign.DefaultCompareThresholds()
	if co.rate != def.RateDrop || co.tts != def.TTSSlack || co.allowCellChanges != def.AllowCellChanges {
		t.Errorf("compare defaults drifted from DefaultCompareThresholds: %+v vs %+v", co, def)
	}
	rfs, ro := newReportFlags()
	if err := rfs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ro.md != "" || ro.csv != "" {
		t.Errorf("report defaults drifted: %+v", ro)
	}
}

// devNull returns an *os.File sink for command output the test does
// not inspect.
func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCompareAgainstCommittedBaseline is the acceptance pin for the CI
// gate: a same-seed rerun of the quick spec compares clean against the
// committed CAMPAIGN_baseline.json (exit zero), and an injected
// regression against the same baseline fails (exit non-zero).
func TestCompareAgainstCommittedBaseline(t *testing.T) {
	const baseline = "../../CAMPAIGN_baseline.json"
	spec, err := campaign.LoadSpec("quick")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	runs := filepath.Join(dir, "ci.jsonl")
	if _, err := campaign.Run(campaign.Options{Spec: spec, Out: runs, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	agg, err := campaign.AggregateFiles(spec, "ci", runs)
	if err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "CAMPAIGN_ci.json")
	if err := campaign.WriteAggregate(agg, cur); err != nil {
		t.Fatal(err)
	}
	sink := devNull(t)
	if err := runCompare([]string{baseline, cur}, sink); err != nil {
		t.Fatalf("same-seed quick rerun regressed against the committed baseline: %v\n"+
			"(if the engine's arithmetic changed on purpose, refresh the baseline — see docs/CAMPAIGNS.md)", err)
	}

	// Inject a regression: a cell that always solved now never does.
	mutated := false
	for i := range agg.Cells {
		if agg.Cells[i].SuccessRate == 1 {
			agg.Cells[i].SuccessRate = 0
			agg.Cells[i].Successes = 0
			agg.Cells[i].ExpectedTTS = nil
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no fully-successful cell in the quick aggregate to regress")
	}
	bad := filepath.Join(dir, "CAMPAIGN_bad.json")
	if err := campaign.WriteAggregate(agg, bad); err != nil {
		t.Fatal(err)
	}
	err = runCompare([]string{baseline, bad}, sink)
	if err == nil {
		t.Fatal("injected regression compared clean against the baseline")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("compare error does not mention regressions: %v", err)
	}
}

// TestReportCLIByteDeterminism renders the committed baseline twice
// through the report mode and requires identical bytes on disk.
func TestReportCLIByteDeterminism(t *testing.T) {
	dir := t.TempDir()
	render := func(tag string) ([]byte, []byte) {
		md := filepath.Join(dir, tag+".md")
		csv := filepath.Join(dir, tag+".csv")
		if err := runReport([]string{"-md", md, "-csv", csv, "../../CAMPAIGN_baseline.json"}, devNull(t)); err != nil {
			t.Fatal(err)
		}
		m, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		c, err := os.ReadFile(csv)
		if err != nil {
			t.Fatal(err)
		}
		return m, c
	}
	m1, c1 := render("a")
	m2, c2 := render("b")
	if !bytes.Equal(m1, m2) || !bytes.Equal(c1, c2) {
		t.Error("report output differs across reruns")
	}
	if len(m1) == 0 || len(c1) == 0 {
		t.Error("report rendered empty output")
	}
}
