package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/usagecheck"
)

// TestDocumentedInvocationsParse pins every campaign snippet in this
// command's doc comment, the README and docs/CAMPAIGNS.md against the
// real flag set, so the usage text cannot drift from the flags main
// parses.
func TestDocumentedInvocationsParse(t *testing.T) {
	sources := []string{"main.go", "../../README.md", "../../docs/CAMPAIGNS.md", "../../docs/ARCHITECTURE.md", "../../docs/OBSERVABILITY.md"}
	seen := 0
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		text := string(data)
		seen += len(usagecheck.Snippets(text, "campaign"))
		for _, p := range usagecheck.Verify(text, "campaign", func() *flag.FlagSet {
			fs, _ := newFlags()
			return fs
		}) {
			t.Errorf("%s: %s", path, p)
		}
	}
	if seen == 0 {
		t.Error("no documented campaign invocations found — the drift test is checking nothing")
	}
}

// TestDefaultsAreSane guards the values the doc comment advertises.
func TestDefaultsAreSane(t *testing.T) {
	fs, o := newFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.spec != "quick" || o.label != "dev" || o.shard != "0/1" || o.resume || o.noAgg || o.aggOnly || o.trace != "" || o.chrome {
		t.Errorf("defaults drifted: %+v", o)
	}
}
