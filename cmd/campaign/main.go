// Command campaign runs a fault-campaign sweep: it expands a scenario
// spec into its solver × preconditioner × problem × ranks × fault-model
// grid, executes every replicate on a worker pool, streams results to a
// crash-safe JSONL file, and folds them into the canonical
// CAMPAIGN_<label>.json aggregate. Run `campaign -h` for the full flag
// set — a test pins every usage snippet in this comment, the README and
// docs/CAMPAIGNS.md against the flags the program actually parses.
//
// Common invocations:
//
//	campaign -spec quick -label dev                                  # run + aggregate
//	campaign -spec quick -label dev -resume                          # finish a killed run
//	campaign -cells -spec quick                                      # list the grid
//	campaign -spec quick -shard 0/2 -runs shard0.jsonl -no-agg       # CI fan-out, half 1
//	campaign -spec quick -shard 1/2 -runs shard1.jsonl -no-agg       # CI fan-out, half 2
//	campaign -aggregate-only -spec quick -label ci shard0.jsonl shard1.jsonl
//	campaign -spec quick -label dev -trace traces -trace-chrome      # per-run event timelines
//
// The spec is "quick", "full", or a path to a JSON Spec file (see
// docs/CAMPAIGNS.md for the format and the JSONL/aggregate schemas).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/comm"
)

// options carries every flag campaign parses; newFlags is the single
// source of truth the help text and the usage-snippet test derive from.
type options struct {
	spec    string
	label   string
	seed    uint64
	shard   string
	runs    string
	resume  bool
	workers int
	cells   bool
	aggOnly bool
	noAgg   bool
	quiet   bool
	trace   string
	chrome  bool
}

// newFlags builds the flag set. Keeping construction in one function is
// what lets main_test.go verify that every documented invocation parses.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.StringVar(&o.spec, "spec", "quick", "campaign spec: quick, full, or a JSON file path")
	fs.StringVar(&o.label, "label", "dev", "label; names the default output files")
	fs.Uint64Var(&o.seed, "seed", 0, "override the spec's campaign seed (0 keeps it)")
	fs.StringVar(&o.shard, "shard", "0/1", "run only cells with index%n == k, as k/n")
	fs.StringVar(&o.runs, "runs", "", "JSONL run-record path (default campaign_<label>.jsonl)")
	fs.BoolVar(&o.resume, "resume", false, "keep existing records in -runs and execute only missing runs")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&o.cells, "cells", false, "list the spec's runnable grid cells and exit")
	fs.BoolVar(&o.aggOnly, "aggregate-only", false, "skip running; aggregate the JSONL files given as arguments")
	fs.BoolVar(&o.noAgg, "no-agg", false, "skip aggregation after the run (sharded CI jobs)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-run progress lines")
	fs.StringVar(&o.trace, "trace", "", "write one repro-trace/v1 event timeline per run into this directory")
	fs.BoolVar(&o.chrome, "trace-chrome", false, "with -trace, also write Chrome trace-event files for timeline viewers")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: campaign [flags] [jsonl files with -aggregate-only]\n\n")
		fmt.Fprintf(fs.Output(), "Sweeps the solver x precond x problem x ranks x fault grid of a\n")
		fmt.Fprintf(fs.Output(), "scenario spec, streams per-run JSONL records, and aggregates them\n")
		fmt.Fprintf(fs.Output(), "into CAMPAIGN_<label>.json (success rates, quantiles, expected\n")
		fmt.Fprintf(fs.Output(), "time-to-solution with bootstrap CIs).\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

func main() {
	fs, o := newFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if err := run(fs, o); err != nil {
		// Package errors already carry the "campaign: " prefix; don't
		// double it on the way out.
		fmt.Fprintln(os.Stderr, "campaign:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

func run(fs *flag.FlagSet, o *options) error {
	spec, err := campaign.LoadSpec(o.spec)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}

	if o.cells {
		for _, c := range spec.Cells() {
			fmt.Printf("%4d  %s\n", c.Index, c.Key())
		}
		cov := spec.Coverage()
		fmt.Printf("%d cells x %d replicates = %d runs (%d solvers, %d preconds, %d problems, %d fault models)\n",
			cov.Cells, spec.Replicates, cov.Runs, cov.Solvers, cov.Preconds, cov.Problems, cov.Fault)
		return nil
	}

	aggPath := "CAMPAIGN_" + o.label + ".json"
	if o.aggOnly {
		if fs.NArg() == 0 {
			return fmt.Errorf("-aggregate-only needs at least one JSONL file argument")
		}
		agg, err := campaign.AggregateFiles(spec, o.label, fs.Args()...)
		if err != nil {
			return err
		}
		if err := campaign.WriteAggregate(agg, aggPath); err != nil {
			return err
		}
		fmt.Printf("aggregated %d runs (%d successes) over %d cells -> %s\n",
			agg.Runs, agg.Successes, len(agg.Cells), aggPath)
		return nil
	}

	shard, shards, err := campaign.ParseShard(o.shard)
	if err != nil {
		return err
	}
	runsPath := o.runs
	if runsPath == "" {
		runsPath = "campaign_" + o.label + ".jsonl"
	}
	led := &comm.Ledger{}
	opts := campaign.Options{
		Spec: spec, Shard: shard, Shards: shards, Workers: o.workers,
		Out: runsPath, Resume: o.resume, Ledger: led,
		TraceDir: o.trace, TraceChrome: o.chrome,
	}
	if !o.quiet {
		opts.Progress = os.Stderr
	}
	st, err := campaign.Run(opts)
	if err != nil {
		return err
	}
	snap := led.Snapshot()
	fmt.Printf("shard %d/%d: %d cells, %d runs (%d resumed, %d executed, %d errored) -> %s\n",
		shard, shards, st.Cells, st.Planned, st.Resumed, st.Executed, st.Errored, runsPath)
	fmt.Printf("simulated: %d worlds, %d rank executions, %.3g virtual rank-seconds\n",
		snap.Worlds, snap.Ranks, snap.RankSeconds)
	if o.trace != "" {
		fmt.Printf("traced %d runs -> %s\n", st.Executed, o.trace)
	}

	if o.noAgg {
		return nil
	}
	if shards != 1 {
		return fmt.Errorf("a single shard is incomplete; aggregate all shards with -aggregate-only (or pass -no-agg)")
	}
	agg, err := campaign.AggregateFiles(spec, o.label, runsPath)
	if err != nil {
		return err
	}
	if err := campaign.WriteAggregate(agg, aggPath); err != nil {
		return err
	}
	fmt.Printf("aggregated %d runs (%d successes) over %d cells -> %s\n",
		agg.Runs, agg.Successes, len(agg.Cells), aggPath)
	return nil
}
