// Command campaign runs a fault-campaign sweep and gates its claims:
// it expands a scenario spec into its solver × preconditioner ×
// problem × ranks × fault-model grid, executes every replicate on a
// worker pool, streams results to a crash-safe JSONL file, folds them
// into the canonical CAMPAIGN_<label>.json aggregate, and — with the
// compare and report modes — regression-gates an aggregate against a
// committed baseline and renders the paper's cross-cell comparisons.
// Run `campaign -h` for the full flag set — a test pins every usage
// snippet in this comment, the README and docs/CAMPAIGNS.md against
// the flags the program actually parses.
//
// Common invocations:
//
//	campaign -spec quick -label dev                                  # run + aggregate
//	campaign -spec quick -label dev -resume                          # finish a killed run
//	campaign -cells -spec quick                                      # list the grid
//	campaign -spec quick -shard 0/2 -runs shard0.jsonl -no-agg       # CI fan-out, half 1
//	campaign -spec quick -shard 1/2 -runs shard1.jsonl -no-agg       # CI fan-out, half 2
//	campaign -aggregate-only -spec quick -label ci shard0.jsonl shard1.jsonl
//	campaign -spec quick -label dev -trace traces -trace-chrome      # per-run event timelines
//	campaign -spec quick -label dev -trace traces -trace-ranks all   # keep every rank's spans (imbalance / critical path)
//	campaign -spec full -label dev -trace traces -trace-sample 1/8   # trace a deterministic 1-in-8 subset of runs
//	campaign compare CAMPAIGN_baseline.json CAMPAIGN_ci.json         # claim gate (exit 1 on regression)
//	campaign report -csv report.csv CAMPAIGN_ci.json                 # render the paper's comparisons (Markdown to stdout; -md FILE writes it)
//
// The spec is "quick", "full", or a path to a JSON Spec file (see
// docs/CAMPAIGNS.md for the format, the JSONL/aggregate schemas, the
// compare thresholds and the report layout).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/comm"
)

// options carries every run-mode flag; newFlags is the single source
// of truth the help text and the usage-snippet test derive from.
type options struct {
	spec    string
	label   string
	seed    uint64
	shard   string
	runs    string
	out     string
	resume  bool
	workers int
	cells   bool
	aggOnly bool
	noAgg   bool
	quiet   bool
	trace   string
	chrome  bool
	tranks  string
	tsample string
}

// newFlags builds the run-mode flag set. Keeping construction in one
// function is what lets main_test.go verify that every documented
// invocation parses.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.StringVar(&o.spec, "spec", "quick", "campaign spec: quick, full, or a JSON file path")
	fs.StringVar(&o.label, "label", "dev", "label; names the default output files")
	fs.Uint64Var(&o.seed, "seed", 0, "override the spec's campaign seed (0 keeps it)")
	fs.StringVar(&o.shard, "shard", "0/1", "run only cells with index%n == k, as k/n")
	fs.StringVar(&o.runs, "runs", "", "JSONL run-record path (default campaign_<label>.jsonl)")
	fs.StringVar(&o.out, "out", "", "aggregate output path (default CAMPAIGN_<label>.json)")
	fs.BoolVar(&o.resume, "resume", false, "keep existing records in -runs and execute only missing runs")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.BoolVar(&o.cells, "cells", false, "list the spec's runnable grid cells and exit")
	fs.BoolVar(&o.aggOnly, "aggregate-only", false, "skip running; aggregate the JSONL files given as arguments")
	fs.BoolVar(&o.noAgg, "no-agg", false, "skip aggregation after the run (sharded CI jobs)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-run progress lines")
	fs.StringVar(&o.trace, "trace", "", "write one repro-trace/v1 event timeline per run into this directory")
	fs.BoolVar(&o.chrome, "trace-chrome", false, "with -trace, also write Chrome trace-event files for timeline viewers")
	fs.StringVar(&o.tranks, "trace-ranks", "0", "spans kept per trace: 0 (rank 0 only) or all (every rank, enables imbalance/critical-path analytics)")
	fs.StringVar(&o.tsample, "trace-sample", "1/1", "trace a deterministic k/n sample of runs (seeded by run key; same subset on every rerun)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: campaign [flags] [jsonl files with -aggregate-only]\n")
		fmt.Fprintf(fs.Output(), "       campaign compare [flags] BASELINE.json CURRENT.json\n")
		fmt.Fprintf(fs.Output(), "       campaign report [flags] AGGREGATE.json\n\n")
		fmt.Fprintf(fs.Output(), "Sweeps the solver x precond x problem x ranks x fault grid of a\n")
		fmt.Fprintf(fs.Output(), "scenario spec, streams per-run JSONL records, and aggregates them\n")
		fmt.Fprintf(fs.Output(), "into CAMPAIGN_<label>.json (success rates, quantiles, expected\n")
		fmt.Fprintf(fs.Output(), "time-to-solution with bootstrap CIs). compare gates an aggregate\n")
		fmt.Fprintf(fs.Output(), "against a baseline; report renders the paper's comparisons.\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

// compareOptions carries the compare-mode flags.
type compareOptions struct {
	rate             float64
	tts              float64
	allowCellChanges bool
}

// newCompareFlags builds the compare flag set (see newFlags).
func newCompareFlags() (*flag.FlagSet, *compareOptions) {
	def := campaign.DefaultCompareThresholds()
	o := &compareOptions{}
	fs := flag.NewFlagSet("campaign compare", flag.ContinueOnError)
	fs.Float64Var(&o.rate, "rate", def.RateDrop, "allowed absolute success-rate drop per cell")
	fs.Float64Var(&o.tts, "tts", def.TTSSlack, "allowed relative upward E[TTS] CI shift before disjoint CIs regress")
	fs.BoolVar(&o.allowCellChanges, "allow-cell-changes", def.AllowCellChanges, "treat cells removed by spec drift as notes, not regressions")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: campaign compare [flags] BASELINE.json CURRENT.json\n\n")
		fmt.Fprintf(fs.Output(), "Gates CURRENT against BASELINE cell by cell; exits 1 when any cell's\n")
		fmt.Fprintf(fs.Output(), "success rate drops beyond -rate, its E[TTS] bootstrap CI shifts\n")
		fmt.Fprintf(fs.Output(), "disjointly up beyond -tts, harness errors appear, or a baseline cell\n")
		fmt.Fprintf(fs.Output(), "vanished from the grid.\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

// reportOptions carries the report-mode flags.
type reportOptions struct {
	md  string
	csv string
}

// newReportFlags builds the report flag set (see newFlags).
func newReportFlags() (*flag.FlagSet, *reportOptions) {
	o := &reportOptions{}
	fs := flag.NewFlagSet("campaign report", flag.ContinueOnError)
	fs.StringVar(&o.md, "md", "", "write the Markdown report here (default stdout)")
	fs.StringVar(&o.csv, "csv", "", "also write the per-cell CSV table here")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: campaign report [flags] AGGREGATE.json\n\n")
		fmt.Fprintf(fs.Output(), "Renders the paper's cross-cell comparisons (ftgmres vs gmres at equal\n")
		fmt.Fprintf(fs.Output(), "fault rate, E[TTS] vs ranks, noisy vs clean twins) as deterministic\n")
		fmt.Fprintf(fs.Output(), "Markdown, plus the full per-cell distributions as CSV.\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "compare":
		err = runCompare(args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "report":
		err = runReport(args[1:], os.Stdout)
	default:
		fs, o := newFlags()
		fs.SetOutput(os.Stderr)
		if err := fs.Parse(args); err != nil {
			if err == flag.ErrHelp {
				os.Exit(0)
			}
			os.Exit(2)
		}
		err = run(fs, o)
	}
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		// Package errors already carry the "campaign: " prefix; don't
		// double it on the way out.
		fmt.Fprintln(os.Stderr, "campaign:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

// runCompare is the compare mode: load both aggregates, gate, render,
// and return a non-nil error on any regression (main exits 1).
func runCompare(args []string, w *os.File) error {
	fs, o := newCompareFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("compare needs exactly two aggregate files, got %d", fs.NArg())
	}
	base, err := campaign.ReadAggregate(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := campaign.ReadAggregate(fs.Arg(1))
	if err != nil {
		return err
	}
	th := campaign.CompareThresholds{RateDrop: o.rate, TTSSlack: o.tts, AllowCellChanges: o.allowCellChanges}
	cmp := campaign.Compare(base, cur, th)
	cmp.Render(w)
	if !cmp.Ok() {
		return fmt.Errorf("%d claim regression(s) against %s", cmp.Regressions, fs.Arg(0))
	}
	return nil
}

// runReport is the report mode: render one aggregate's claim report.
func runReport(args []string, w *os.File) error {
	fs, o := newReportFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("report needs exactly one aggregate file, got %d", fs.NArg())
	}
	agg, err := campaign.ReadAggregate(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := campaign.BuildReport(agg)
	if o.md == "" {
		if _, err := w.Write(rep.Markdown); err != nil {
			return err
		}
	} else if err := os.WriteFile(o.md, rep.Markdown, 0o644); err != nil {
		return err
	}
	if o.csv != "" {
		if err := os.WriteFile(o.csv, rep.CSV, 0o644); err != nil {
			return err
		}
	}
	if o.md != "" {
		fmt.Fprintf(w, "report: %d cells -> %s", len(agg.Cells), o.md)
		if o.csv != "" {
			fmt.Fprintf(w, " + %s", o.csv)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func run(fs *flag.FlagSet, o *options) error {
	spec, err := campaign.LoadSpec(o.spec)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}

	if o.cells {
		for _, c := range spec.Cells() {
			fmt.Printf("%4d  %s\n", c.Index, c.Key())
		}
		cov := spec.Coverage()
		fmt.Printf("%d cells x %d replicates = %d runs (%d solvers, %d preconds, %d problems, %d fault models)\n",
			cov.Cells, spec.Replicates, cov.Runs, cov.Solvers, cov.Preconds, cov.Problems, cov.Fault)
		return nil
	}

	aggPath := o.out
	if aggPath == "" {
		aggPath = "CAMPAIGN_" + o.label + ".json"
	}
	if o.aggOnly {
		if fs.NArg() == 0 {
			return fmt.Errorf("-aggregate-only needs at least one JSONL file argument")
		}
		agg, err := campaign.AggregateFiles(spec, o.label, fs.Args()...)
		if err != nil {
			return err
		}
		if err := campaign.WriteAggregate(agg, aggPath); err != nil {
			return err
		}
		fmt.Printf("aggregated %d runs (%d successes) over %d cells -> %s\n",
			agg.Runs, agg.Successes, len(agg.Cells), aggPath)
		return nil
	}

	shard, shards, err := campaign.ParseShard(o.shard)
	if err != nil {
		return err
	}
	runsPath := o.runs
	if runsPath == "" {
		runsPath = "campaign_" + o.label + ".jsonl"
	}
	led := &comm.Ledger{}
	opts := campaign.Options{
		Spec: spec, Shard: shard, Shards: shards, Workers: o.workers,
		Out: runsPath, Resume: o.resume, Ledger: led,
		TraceDir: o.trace, TraceChrome: o.chrome,
		TraceRanks: o.tranks, TraceSample: o.tsample,
	}
	if !o.quiet {
		opts.Progress = os.Stderr
	}
	st, err := campaign.Run(opts)
	if err != nil {
		return err
	}
	snap := led.Snapshot()
	fmt.Printf("shard %d/%d: %d cells, %d runs (%d resumed, %d executed, %d errored) -> %s\n",
		shard, shards, st.Cells, st.Planned, st.Resumed, st.Executed, st.Errored, runsPath)
	fmt.Printf("simulated: %d worlds, %d rank executions, %.3g virtual rank-seconds\n",
		snap.Worlds, snap.Ranks, snap.RankSeconds)
	if o.trace != "" {
		fmt.Printf("traced %d runs -> %s\n", st.Executed, o.trace)
	}

	if o.noAgg {
		return nil
	}
	if shards != 1 {
		return fmt.Errorf("a single shard is incomplete; aggregate all shards with -aggregate-only (or pass -no-agg)")
	}
	agg, err := campaign.AggregateFiles(spec, o.label, runsPath)
	if err != nil {
		return err
	}
	if err := campaign.WriteAggregate(agg, aggPath); err != nil {
		return err
	}
	fmt.Printf("aggregated %d runs (%d successes) over %d cells -> %s\n",
		agg.Runs, agg.Successes, len(agg.Cells), aggPath)
	return nil
}
