package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/usagecheck"
)

// TestDocumentedInvocationsParse pins every traceq snippet in this
// command's doc comment, the README and the docs against the real flag
// set, so the usage text cannot drift from the flags main parses (see
// cmd/campaign for the same pattern).
func TestDocumentedInvocationsParse(t *testing.T) {
	mk := func() *flag.FlagSet { fs, _ := newFlags(); return fs }
	sources := []string{"main.go", "../../README.md", "../../docs/OBSERVABILITY.md", "../../docs/ARCHITECTURE.md"}
	seen := 0
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		text := string(data)
		seen += len(usagecheck.Snippets(text, "traceq"))
		for _, p := range usagecheck.Verify(text, "traceq", mk) {
			t.Errorf("%s: %s", path, p)
		}
	}
	if seen == 0 {
		t.Error("no documented traceq invocations found — the drift test is checking nothing")
	}
}

// TestDefaultsAreSane guards the values the doc comment advertises.
func TestDefaultsAreSane(t *testing.T) {
	fs, o := newFlags()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.md != "" || o.csv != "" {
		t.Errorf("defaults drifted: %+v", o)
	}
}

// traceSpec is a small grid that exercises every report section: both
// solvers on the same cells (phase deltas), bitflips on ftgmres
// (discards), and rank kills (recovery latencies).
func traceSpec() campaign.Spec {
	return campaign.Spec{
		Name:     "traceq-test",
		Seed:     11,
		Solvers:  []string{campaign.SolverGMRES, campaign.SolverFTGMRES},
		Preconds: []string{campaign.PrecondBJILU},
		Problems: []string{campaign.ProblemPoisson},
		Ranks:    []int{2},
		Faults: []campaign.FaultSpec{
			{Model: campaign.FaultBitflip, Rate: 5e-3},
			{Model: campaign.FaultRankKill, MTBF: 15},
		},
		Replicates:  2,
		Grid:        8,
		Tol:         1e-6,
		MaxIter:     300,
		MaxRestarts: 6,
	}
}

// runCampaignTraces executes the test spec with the given worker count
// and trace-ranks mode and returns the trace directory.
func runCampaignTraces(t *testing.T, workers int, ranks string) string {
	t.Helper()
	dir := t.TempDir()
	traces := filepath.Join(dir, "traces")
	_, err := campaign.Run(campaign.Options{
		Spec: traceSpec(), Out: filepath.Join(dir, "runs.jsonl"),
		Workers: workers, TraceDir: traces, TraceRanks: ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

// renderReport runs the CLI over a trace directory and returns the
// Markdown and CSV bytes.
func renderReport(t *testing.T, traces string) ([]byte, []byte) {
	t.Helper()
	dir := t.TempDir()
	md := filepath.Join(dir, "report.md")
	csv := filepath.Join(dir, "report.csv")
	sink, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := run([]string{"-md", md, "-csv", csv, traces}, sink); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// TestReportByteDeterminism is the acceptance pin: traceq over the
// same campaign's traces is byte-identical across reruns AND across
// the worker counts that produced the traces, and the report's
// headline sections all carry data from a real solver run.
func TestReportByteDeterminism(t *testing.T) {
	traces1 := runCampaignTraces(t, 1, "0")
	traces4 := runCampaignTraces(t, 4, "0")

	m1, c1 := renderReport(t, traces1)
	m1b, c1b := renderReport(t, traces1)
	if !bytes.Equal(m1, m1b) || !bytes.Equal(c1, c1b) {
		t.Error("traceq output differs across reruns over the same traces")
	}
	m4, c4 := renderReport(t, traces4)
	if !bytes.Equal(m1, m4) || !bytes.Equal(c1, c4) {
		t.Error("traceq output differs across the worker counts that produced the traces")
	}

	for _, want := range []string{
		"## Phase attribution by solver",
		"| gmres |", "| ftgmres |",
		"## ftgmres vs gmres: phase deltas",
		"## Fault-to-recovery latency",
		"## Discard ordinal histogram",
	} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Errorf("report missing %q", want)
		}
	}
	if bytes.Contains(m1, []byte("No (ftgmres, gmres) cell pairs")) {
		t.Error("delta section found no pairs despite paired cells in the spec")
	}
	if bytes.Contains(m1, []byte("No global restarts")) {
		t.Error("recovery section empty despite rank-kill cells")
	}
}

// TestAllRankReportDeterminism is the acceptance pin for the
// parallel-cost analytics: over all-rank traces of a real campaign,
// the imbalance/wait/critical-path sections render with data, the
// ftgmres-vs-gmres critical-path delta is nonzero on the paired cells,
// and the whole report stays byte-identical across reruns and across
// the worker counts that produced the traces.
func TestAllRankReportDeterminism(t *testing.T) {
	traces1 := runCampaignTraces(t, 1, "all")
	traces4 := runCampaignTraces(t, 4, "all")

	m1, c1 := renderReport(t, traces1)
	m4, c4 := renderReport(t, traces4)
	if !bytes.Equal(m1, m4) || !bytes.Equal(c1, c4) {
		t.Error("all-rank traceq output differs across the worker counts that produced the traces")
	}
	for _, want := range []string{
		"## Load imbalance by phase",
		"## Wait-time share per rank",
		"## Critical path by phase",
		"### ftgmres vs gmres on the critical path",
	} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Errorf("all-rank report missing %q", want)
		}
	}
	if bytes.Contains(m1, []byte("No all-rank")) {
		t.Errorf("all-rank traces still rendered an empty parallel-cost section:\n%s", m1)
	}
	for _, want := range []string{"\nimbalance,", "\nwait,", "\ncritpath,"} {
		if !bytes.Contains(c1, []byte(want)) {
			t.Errorf("all-rank CSV missing %q rows", want)
		}
	}
	// The selective-reliability delta on the critical path must be a
	// real signal: at least one phase row with a nonzero delta.
	_, after, ok := bytes.Cut(m1, []byte("### ftgmres vs gmres on the critical path"))
	if !ok {
		t.Fatal("no critical-path delta section")
	}
	nonzero := false
	for _, line := range bytes.Split(after, []byte("\n")) {
		cols := bytes.Split(line, []byte("|"))
		if len(cols) < 5 {
			continue
		}
		if d := bytes.TrimSpace(cols[4]); len(d) > 0 && !bytes.Equal(d, []byte("0")) && !bytes.Equal(d, []byte("delta (pp)")) && !bytes.HasPrefix(d, []byte("---")) {
			nonzero = true
		}
	}
	if !nonzero {
		t.Errorf("every ftgmres-vs-gmres critical-path delta is zero:\n%s", after)
	}
}

// TestErrorOnMissingDir pins the CLI's failure mode for a mistyped
// path.
func TestErrorOnMissingDir(t *testing.T) {
	sink, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := run([]string{t.TempDir()}, sink); err == nil {
		t.Error("empty trace directory did not error")
	}
}
