// Command traceq is the trace-analytics CLI over repro-trace/v1: it
// loads a directory of per-run trace files (written by `campaign
// -trace DIR` or solverd's per-request tracing) and renders the
// span-based phase attribution report — where virtual time goes per
// solver, the ftgmres-vs-gmres phase deltas, the per-phase load
// imbalance across ranks, the wait-time share per rank, the
// critical-path phase charges (with ftgmres-vs-gmres critical-path
// deltas), the fault-to-recovery latency distribution, and the discard
// ordinal histogram — as deterministic Markdown plus a full-precision
// CSV. The imbalance, wait and critical-path sections need all-rank
// traces (`campaign -trace traces -trace-ranks all`); rank-0 traces
// get the attribution sections and a pointer instead. Like `campaign
// report`, the output is a pure function of the trace files:
// byte-identical across reruns and across the worker counts that
// produced the traces.
//
// Common invocations:
//
//	traceq traces                                  # Markdown to stdout
//	traceq -csv report.csv traces                  # plus the full-precision CSV (-md FILE writes the Markdown)
//
// Run `traceq -h` for the flag set — a test pins every usage snippet
// in this comment, the README and docs/OBSERVABILITY.md against the
// flags the program actually parses.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/traceq"
)

// options carries the traceq flags; newFlags is the single source of
// truth the help text and the usage-snippet test derive from.
type options struct {
	md  string
	csv string
}

// newFlags builds the flag set. Keeping construction in one function
// is what lets main_test.go verify that every documented invocation
// parses.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("traceq", flag.ContinueOnError)
	fs.StringVar(&o.md, "md", "", "write the Markdown report here (default stdout)")
	fs.StringVar(&o.csv, "csv", "", "also write the per-run/per-cell CSV table here")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: traceq [flags] TRACEDIR\n\n")
		fmt.Fprintf(fs.Output(), "Reduces every *.trace.jsonl under TRACEDIR into the span-based phase\n")
		fmt.Fprintf(fs.Output(), "attribution report: virtual-time share per phase by solver, ftgmres\n")
		fmt.Fprintf(fs.Output(), "vs gmres deltas, per-phase load imbalance, wait-time share per rank,\n")
		fmt.Fprintf(fs.Output(), "critical-path phase charges (all-rank traces), fault-to-recovery\n")
		fmt.Fprintf(fs.Output(), "latencies, and the discard ordinal histogram. Deterministic Markdown,\n")
		fmt.Fprintf(fs.Output(), "full precision in the CSV.\n\n")
		fs.PrintDefaults()
	}
	return fs, o
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, "traceq:", strings.TrimPrefix(err.Error(), "traceq: "))
		os.Exit(1)
	}
}

// run parses flags, loads the trace directory, and writes the report.
func run(args []string, w *os.File) error {
	fs, o := newFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one trace directory, got %d arguments", fs.NArg())
	}
	a, err := traceq.LoadDir(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := traceq.BuildReport(a)
	if o.md == "" {
		if _, err := w.Write(rep.Markdown); err != nil {
			return err
		}
	} else if err := os.WriteFile(o.md, rep.Markdown, 0o644); err != nil {
		return err
	}
	if o.csv != "" {
		if err := os.WriteFile(o.csv, rep.CSV, 0o644); err != nil {
			return err
		}
	}
	if o.md != "" {
		fmt.Fprintf(w, "traceq: %d runs -> %s", len(a.Runs), o.md)
		if o.csv != "" {
			fmt.Fprintf(w, " + %s", o.csv)
		}
		fmt.Fprintln(w)
	}
	return nil
}
