// Command solverd runs the repro-solve/v1 service and its clients: a
// long-running HTTP server that schedules solve and campaign requests
// on a bounded worker pool with cross-request setup caching (serve), a
// campaign submitter that uses the engine as a load generator against
// a running server (submit), and a self-contained end-to-end check
// that byte-diffs served against direct execution (smoke). Run
// `solverd <mode> -h` for each flag set — a test pins every usage
// snippet in this comment, the README and docs/SERVICE.md against the
// flags the program actually parses.
//
// Common invocations:
//
//	solverd serve -addr :8077                                          # start the service
//	solverd serve -addr :8077 -workers 8 -queue 64                     # sized pool
//	solverd serve -addr :8077 -pprof -trace-dir traces                 # debug profiling + per-run traces
//	solverd serve -addr :8077 -trace-dir traces -trace-ranks all -trace-sample 1/4  # all-rank spans for a deterministic quarter of runs
//	solverd serve -addr :8077 -journal-dir journal -journal-fsync off  # durable: journal + snapshots + hot resume
//	solverd serve -addr :8077 -journal-dir journal -snapshot-every 128 -cache-max-entries 512
//	solverd serve -addr :8077 -log-level debug                         # structured key=value logs on stderr
//	solverd submit -addr http://localhost:8077 -spec quick -label dev  # campaign through the service
//	solverd submit -addr http://localhost:8077 -spec quick -shard 0/2 -runs shard0.jsonl -no-agg
//	solverd smoke -spec quick -label ci                                # in-process served-vs-direct diff
//	solverd smoke -spec quick -label kr -outdir out -journal-dir out/journal -kill-at run:40,stream:3,journal:80
//
// The spec is "quick", "full", or a path to a JSON Spec file; see
// docs/SERVICE.md for the wire schema and docs/CAMPAIGNS.md for the
// campaign formats.
//
// The server logs structured key=value lines to stderr, each carrying
// the deterministic request correlation ID (req=r-... / req=c-...)
// that also names trace files, stamps journal entries and rides SSE
// id: lines — see docs/OBSERVABILITY.md. GET /healthz is pure
// liveness; GET /readyz flips to 503 the moment a shutdown signal
// starts the drain, so load balancers stop routing before the
// listener closes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "submit":
		err = runSubmit(os.Args[2:])
	case "smoke":
		err = runSmoke(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "solverd: unknown mode %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, "solverd:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprintf(w, "usage: solverd <mode> [flags]\n\n")
	fmt.Fprintf(w, "modes:\n")
	fmt.Fprintf(w, "  serve    run the solve service (HTTP, repro-solve/v1)\n")
	fmt.Fprintf(w, "  submit   run a campaign against a live server (engine as load generator)\n")
	fmt.Fprintf(w, "  smoke    start an in-process server, submit a campaign, byte-diff vs direct\n")
}

// serveOptions carries the serve-mode flags.
type serveOptions struct {
	addr          string
	workers       int
	queue         int
	drain         time.Duration
	pprof         bool
	traceDir      string
	traceRanks    string
	traceSample   string
	journalDir    string
	journalFsync  string
	snapshotEvery int
	cacheMax      int
	logLevel      string
}

// newServeFlags builds the serve flag set; keeping construction in one
// function lets main_test.go verify documented invocations parse.
func newServeFlags() (*flag.FlagSet, *serveOptions) {
	o := &serveOptions{}
	fs := flag.NewFlagSet("solverd serve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8077", "listen address")
	fs.IntVar(&o.workers, "workers", 0, "solve pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 0, "pending-solve queue depth (0 = 4x workers)")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "shutdown drain deadline; in-flight requests past it are cut (size to your longest campaign request)")
	fs.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in; exposes goroutine and heap internals)")
	fs.StringVar(&o.traceDir, "trace-dir", "", "write one repro-trace/v1 event timeline per executed run into this directory")
	fs.StringVar(&o.traceRanks, "trace-ranks", "0", "spans kept per trace: 0 (rank 0 only) or all (every rank, enables imbalance/critical-path analytics)")
	fs.StringVar(&o.traceSample, "trace-sample", "1/1", "trace a deterministic k/n sample of executed runs (seeded by run key; same subset on every rerun)")
	fs.StringVar(&o.journalDir, "journal-dir", "", "enable durability: keep the repro-journal/v1 run journal and repro-snapshot/v1 state snapshots in this directory, and resume from them on restart")
	fs.StringVar(&o.journalFsync, "journal-fsync", "always", "journal fsync policy: always (every append is a durability barrier) or off (OS-paced; a crash may lose the last appends, which simply re-execute)")
	fs.IntVar(&o.snapshotEvery, "snapshot-every", 256, "completed runs between state snapshots (each snapshot rotates the journal it captured)")
	fs.IntVar(&o.cacheMax, "cache-max-entries", 0, "LRU bound on resident setup-cache artifacts, per-rank slots (0 = unbounded)")
	fs.StringVar(&o.logLevel, "log-level", "info", "minimum level for the structured key=value log on stderr: debug, info, warn, error or off")
	return fs, o
}

// parseLogLevel maps the -log-level flag to a stderr logger; "off"
// returns nil, which every obs.Logger method treats as disabled.
func parseLogLevel(name string) (*obs.Logger, error) {
	levels := map[string]obs.Level{
		"debug": obs.LevelDebug, "info": obs.LevelInfo,
		"warn": obs.LevelWarn, "error": obs.LevelError,
	}
	if name == "off" {
		return nil, nil
	}
	lv, ok := levels[name]
	if !ok {
		return nil, fmt.Errorf("-log-level must be debug, info, warn, error or off, not %q", name)
	}
	return obs.NewLogger(os.Stderr, lv), nil
}

// parseFsync maps the -journal-fsync policy name to the boolean the
// service takes.
func parseFsync(policy string) (bool, error) {
	switch policy {
	case "always":
		return true, nil
	case "off":
		return false, nil
	default:
		return false, fmt.Errorf("-journal-fsync must be always or off, not %q", policy)
	}
}

// withPprof mounts the net/http/pprof handlers next to the service —
// explicitly, not via the package's DefaultServeMux side effect, so the
// profiling surface exists only behind the opt-in flag.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func runServe(args []string) error {
	fs, o := newServeFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := parseFsync(o.journalFsync)
	if err != nil {
		return err
	}
	logger, err := parseLogLevel(o.logLevel)
	if err != nil {
		return err
	}
	srv, err := service.New(service.Options{
		Workers: o.workers, Queue: o.queue, TraceDir: o.traceDir,
		TraceRanks: o.traceRanks, TraceSample: o.traceSample,
		JournalDir: o.journalDir, JournalFsync: fsync,
		SnapshotEvery: o.snapshotEvery, CacheMaxEntries: o.cacheMax,
		Logger: logger,
	})
	if err != nil {
		return err
	}
	if o.journalDir != "" {
		if stats := srv.Stats(); stats.Journal != nil {
			logger.Info("journal restored", "dir", o.journalDir,
				"records", stats.Journal.Records, "pending", stats.Journal.Pending,
				"sealed_tail", stats.Journal.SealedTail)
		}
	}
	handler := http.Handler(srv.Handler())
	if o.pprof {
		handler = withPprof(handler)
	}
	hs := &http.Server{Addr: o.addr, Handler: handler}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	logger.Info("serving", "proto", service.Schema, "addr", ln.Addr().String(),
		"workers", srv.Stats().Workers)

	// Graceful shutdown: flip readiness, stop accepting, drain in-flight
	// solves, exit. idle carries whether the drain beat the deadline.
	idle := make(chan bool, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Readiness drops first so load balancers stop routing here
		// while the listener finishes what it already accepted.
		srv.SetDraining(true)
		logger.Info("draining in-flight solves", "deadline", o.drain)
		ctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			// Deadline hit with requests still in flight: actually cut
			// them — Shutdown on expiry only stops waiting, it severs
			// nothing — and skip the pool drain below, which would
			// otherwise execute every queued run of the requests just
			// cut.
			logger.Warn("drain deadline exceeded, cutting remaining requests", "err", err)
			hs.Close()
			idle <- false
			return
		}
		idle <- true
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	if drained := <-idle; !drained {
		logger.Info("shutdown complete", "drained", false)
		return nil
	}
	srv.Close()
	logger.Info("shutdown complete", "drained", true)
	return nil
}

// submitOptions carries the submit-mode flags.
type submitOptions struct {
	addr    string
	spec    string
	label   string
	seed    uint64
	shard   string
	runs    string
	resume  bool
	workers int
	noAgg   bool
	quiet   bool
}

// newSubmitFlags builds the submit flag set (see newServeFlags).
func newSubmitFlags() (*flag.FlagSet, *submitOptions) {
	o := &submitOptions{}
	fs := flag.NewFlagSet("solverd submit", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "http://localhost:8077", "server base URL")
	fs.StringVar(&o.spec, "spec", "quick", "campaign spec: quick, full, or a JSON file path")
	fs.StringVar(&o.label, "label", "dev", "label; names the default output files")
	fs.Uint64Var(&o.seed, "seed", 0, "override the spec's campaign seed (0 keeps it)")
	fs.StringVar(&o.shard, "shard", "0/1", "submit only cells with index%n == k, as k/n")
	fs.StringVar(&o.runs, "runs", "", "JSONL run-record path (default campaign_<label>.jsonl)")
	fs.BoolVar(&o.resume, "resume", false, "keep existing records in -runs and submit only missing runs")
	fs.IntVar(&o.workers, "workers", 0, "concurrent in-flight requests (0 = GOMAXPROCS)")
	fs.BoolVar(&o.noAgg, "no-agg", false, "skip aggregation after the run (sharded jobs)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress per-run progress lines")
	return fs, o
}

func runSubmit(args []string) error {
	fs, o := newSubmitFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := campaign.LoadSpec(o.spec)
	if err != nil {
		return err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}
	shard, shards, err := campaign.ParseShard(o.shard)
	if err != nil {
		return err
	}
	cl := &service.Client{Base: o.addr}
	if err := cl.Healthz(); err != nil {
		return fmt.Errorf("server %s is not healthy: %w", o.addr, err)
	}
	runsPath := o.runs
	if runsPath == "" {
		runsPath = "campaign_" + o.label + ".jsonl"
	}
	opts := campaign.Options{
		Spec: spec, Shard: shard, Shards: shards, Workers: o.workers,
		Out: runsPath, Resume: o.resume, Exec: cl.Exec,
	}
	if !o.quiet {
		opts.Progress = os.Stderr
	}
	st, err := campaign.Run(opts)
	if err != nil {
		return err
	}
	fmt.Printf("shard %d/%d via %s: %d cells, %d runs (%d resumed, %d executed, %d errored) -> %s\n",
		shard, shards, o.addr, st.Cells, st.Planned, st.Resumed, st.Executed, st.Errored, runsPath)
	if stats, err := cl.Stats(); err == nil {
		fmt.Printf("server: %d completed, setup cache %d hits / %d misses, problem cache %d hits / %d misses\n",
			stats.Completed, stats.Cache.SetupHits, stats.Cache.SetupMisses,
			stats.Cache.ProblemHits, stats.Cache.ProblemMisses)
	}
	if o.noAgg {
		return nil
	}
	if shards != 1 {
		return fmt.Errorf("a single shard is incomplete; aggregate all shards with campaign -aggregate-only (or pass -no-agg)")
	}
	agg, err := campaign.AggregateFiles(spec, o.label, runsPath)
	if err != nil {
		return err
	}
	aggPath := "CAMPAIGN_" + o.label + ".json"
	if err := campaign.WriteAggregate(agg, aggPath); err != nil {
		return err
	}
	fmt.Printf("aggregated %d runs (%d successes) over %d cells -> %s\n",
		agg.Runs, agg.Successes, len(agg.Cells), aggPath)
	return nil
}

// smokeOptions carries the smoke-mode flags.
type smokeOptions struct {
	spec       string
	label      string
	outdir     string
	workers    int
	killAt     string
	journalDir string
}

// newSmokeFlags builds the smoke flag set (see newServeFlags).
func newSmokeFlags() (*flag.FlagSet, *smokeOptions) {
	o := &smokeOptions{}
	fs := flag.NewFlagSet("solverd smoke", flag.ContinueOnError)
	fs.StringVar(&o.spec, "spec", "quick", "campaign spec: quick, full, or a JSON file path")
	fs.StringVar(&o.label, "label", "smoke", "label; names the output aggregates")
	fs.StringVar(&o.outdir, "outdir", "", "directory for the JSONL and aggregate outputs (default cwd; created if missing)")
	fs.IntVar(&o.workers, "workers", 0, "pool size and submit concurrency (0 = GOMAXPROCS)")
	fs.StringVar(&o.killAt, "kill-at", "", "kill-and-replay mode: comma-separated crash points (run:N = die after the Nth journaled run, journal:N = tear the Nth run append mid-line, stream:N = die after N streamed records), each crashing and restarting the server before a final resumed pass is byte-diffed against direct execution")
	fs.StringVar(&o.journalDir, "journal-dir", "", "journal directory for -kill-at (default <outdir>/journal-<label>)")
	return fs, o
}

// runSmoke is the end-to-end proof in one process: start a real HTTP
// server on a loopback port, run the campaign directly AND through the
// server, and byte-diff the two aggregates. This is what the CI
// solverd-smoke job runs.
func runSmoke(args []string) error {
	fs, o := newSmokeFlags()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := campaign.LoadSpec(o.spec)
	if err != nil {
		return err
	}
	if o.outdir != "" {
		if err := os.MkdirAll(o.outdir, 0o755); err != nil {
			return err
		}
	}
	if o.killAt != "" {
		return runKillReplay(spec, o)
	}

	// Direct execution: the oracle.
	directRuns := filepath.Join(o.outdir, "campaign_"+o.label+"-direct.jsonl")
	if _, err := campaign.Run(campaign.Options{Spec: spec, Workers: o.workers, Out: directRuns}); err != nil {
		return err
	}
	directAgg, err := campaign.AggregateFiles(spec, o.label, directRuns)
	if err != nil {
		return err
	}

	// Served execution: a real listener, a real client. The served pass
	// traces every rank of every run — the byte-diff against the
	// untraced direct pass below is the proof that all-rank tracing
	// never perturbs results, and the traces feed the phase-histogram
	// reconciliation in checkMetrics.
	traceDir := filepath.Join(o.outdir, "traces-"+o.label)
	srv, err := service.New(service.Options{Workers: o.workers, TraceDir: traceDir, TraceRanks: "all"})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	cl := &service.Client{Base: "http://" + ln.Addr().String()}
	if err := cl.Healthz(); err != nil {
		return err
	}

	servedRuns := filepath.Join(o.outdir, "campaign_"+o.label+"-served.jsonl")
	st, err := campaign.Run(campaign.Options{Spec: spec, Workers: o.workers, Out: servedRuns, Exec: cl.Exec})
	if err != nil {
		return err
	}
	if st.Errored > 0 {
		return fmt.Errorf("smoke: %d of %d served runs errored", st.Errored, st.Executed)
	}
	servedAgg, err := campaign.AggregateFiles(spec, o.label, servedRuns)
	if err != nil {
		return err
	}

	directPath := filepath.Join(o.outdir, "CAMPAIGN_"+o.label+"-direct.json")
	servedPath := filepath.Join(o.outdir, "CAMPAIGN_"+o.label+"-served.json")
	if err := campaign.WriteAggregate(directAgg, directPath); err != nil {
		return err
	}
	if err := campaign.WriteAggregate(servedAgg, servedPath); err != nil {
		return err
	}
	da, err := os.ReadFile(directPath)
	if err != nil {
		return err
	}
	sa, err := os.ReadFile(servedPath)
	if err != nil {
		return err
	}
	stats, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("smoke: %d runs served (%d workers), setup cache %d hits / %d misses\n",
		stats.Completed, o.workers, stats.Cache.SetupHits, stats.Cache.SetupMisses)
	if !bytes.Equal(da, sa) {
		return fmt.Errorf("smoke: %s and %s differ — all-rank traced execution is not byte-identical to untraced", directPath, servedPath)
	}
	if stats.Cache.SetupHits == 0 {
		return fmt.Errorf("smoke: setup cache reported no hits under repeated-cell traffic")
	}
	if err := checkMetrics(cl.Base, stats, traceDir); err != nil {
		return err
	}
	// A machine-readable verdict line for the CI log.
	verdict, _ := json.Marshal(map[string]any{
		"schema": service.Schema, "smoke": "ok", "runs": stats.Completed,
		"setup_hits": stats.Cache.SetupHits, "setup_misses": stats.Cache.SetupMisses,
	})
	fmt.Println(string(verdict))
	return nil
}

// checkMetrics scrapes GET /metrics after the loadgen traffic and
// asserts the Prometheus surface reconciles exactly with /stats: both
// read the same counters, so any disagreement is a wiring bug worth
// failing CI over. traceDir, when non-empty, holds the all-rank traces
// of the same runs; the per-phase virtual-duration histograms must then
// reconcile with the spans the traces persisted — counts exactly, sums
// to float tolerance (accumulation order differs across workers).
func checkMetrics(base string, stats service.StatsResponse, traceDir string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	series, err := obs.ParseText(body)
	if err != nil {
		return fmt.Errorf("smoke: /metrics is not valid exposition text: %w", err)
	}
	for name, want := range map[string]int64{
		"repro_runs_completed_total":       stats.Completed,
		"repro_runs_errored_total":         stats.Errored,
		"repro_setup_cache_hits_total":     stats.Cache.SetupHits,
		"repro_setup_cache_misses_total":   stats.Cache.SetupMisses,
		"repro_problem_cache_hits_total":   stats.Cache.ProblemHits,
		"repro_problem_cache_misses_total": stats.Cache.ProblemMisses,
	} {
		got, ok := series[name]
		if !ok {
			return fmt.Errorf("smoke: /metrics is missing %s", name)
		}
		if got != float64(want) {
			return fmt.Errorf("smoke: %s is %g on /metrics but %d on /stats", name, got, want)
		}
	}
	for _, h := range []string{"repro_run_queue_wait_seconds", "repro_run_execute_seconds"} {
		if series[h+"_count"] != float64(stats.Completed) {
			return fmt.Errorf("smoke: %s_count is %g, want one observation per completed run (%d)",
				h, series[h+"_count"], stats.Completed)
		}
	}
	if traceDir != "" {
		if err := checkPhaseMetrics(series, traceDir); err != nil {
			return err
		}
	}
	fmt.Printf("smoke: /metrics reconciles with /stats (%d series scraped)\n", len(series))
	return nil
}

// checkPhaseMetrics reconciles repro_phase_vseconds against the
// all-rank traces of the same runs: every phase span a trace persisted
// is exactly one histogram observation (restart-recovery excluded — it
// is a harness-stream annotation, not a phase the solve spent time in).
func checkPhaseMetrics(series map[string]float64, traceDir string) error {
	paths, err := filepath.Glob(filepath.Join(traceDir, "*.trace.jsonl"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("smoke: no traces in %s — the served pass should have traced every run", traceDir)
	}
	count := map[string]int{}
	sum := map[string]float64{}
	for _, p := range paths {
		tr, err := obs.ReadTraceFile(p)
		if err != nil {
			return err
		}
		for _, ev := range tr.Events {
			if ev.Name != obs.EventSpan || ev.Detail == obs.PhaseRestartRecovery {
				continue
			}
			count[ev.Detail]++
			sum[ev.Detail] += ev.Dur
		}
	}
	if count[obs.PhaseAllreduce] == 0 || count[obs.PhaseSpMV] == 0 {
		return fmt.Errorf("smoke: traces carry no allreduce/spmv spans — all-rank capture is not working")
	}
	for phase, n := range count {
		key := fmt.Sprintf("repro_phase_vseconds_count{phase=%q}", phase)
		if got := series[key]; got != float64(n) {
			return fmt.Errorf("smoke: %s is %g but the traces persisted %d %s spans", key, got, n, phase)
		}
		skey := fmt.Sprintf("repro_phase_vseconds_sum{phase=%q}", phase)
		got, want := series[skey], sum[phase]
		if diff := got - want; diff < -1e-9*want || diff > 1e-9*want {
			return fmt.Errorf("smoke: %s is %g but the traces sum to %g", skey, got, want)
		}
	}
	fmt.Printf("smoke: repro_phase_vseconds reconciles with %d traces (%d phases)\n", len(paths), len(count))
	return nil
}

// killReplaySnapshotEvery is the snapshot cadence the kill-replay
// harness runs with — small, so crash passes exercise snapshot writes
// and journal rotation, not just raw journal replay.
const killReplaySnapshotEvery = 16

// killPoint is one parsed -kill-at crash point.
type killPoint struct {
	mode string // "run", "journal" or "stream"
	n    int
}

// parseKillPoints parses the -kill-at list ("run:40,stream:3,journal:80").
func parseKillPoints(s string) ([]killPoint, error) {
	var kps []killPoint
	for _, part := range strings.Split(s, ",") {
		mode, num, ok := strings.Cut(strings.TrimSpace(part), ":")
		var n int
		if ok {
			if _, err := fmt.Sscanf(num, "%d", &n); err != nil {
				ok = false
			}
		}
		if !ok || n < 1 || (mode != "run" && mode != "journal" && mode != "stream") {
			return nil, fmt.Errorf("-kill-at: %q is not run:N, journal:N or stream:N with N >= 1", part)
		}
		kps = append(kps, killPoint{mode: mode, n: n})
	}
	return kps, nil
}

// liveServer is one in-process solverd behind a real loopback listener.
type liveServer struct {
	srv *service.Server
	hs  *http.Server
	cl  *service.Client
}

func startServer(opts service.Options) (*liveServer, error) {
	srv, err := service.New(opts)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &liveServer{srv: srv, hs: hs, cl: &service.Client{Base: "http://" + ln.Addr().String()}}, nil
}

func (ls *liveServer) stop() {
	ls.hs.Close()
	ls.srv.Close()
}

// crashPass drives the campaign into a durable server and crashes it at
// the seeded kill point: the journal sink goes dead (a dead process
// journals nothing) and the listener is severed mid-whatever-was-
// happening. The journal directory is left exactly as a real crash
// would leave it — possibly with a torn trailing line.
func crashPass(spec campaign.Spec, o *smokeOptions, dir string, kp killPoint) error {
	inner, err := service.OpenJournal(dir, false)
	if err != nil {
		return err
	}
	cs := &service.CrashSink{Inner: inner}
	switch kp.mode {
	case "run":
		cs.DieAfterRun = kp.n
	case "journal":
		cs.TearAtRun = kp.n
	}
	ls, err := startServer(service.Options{
		Workers: o.workers, JournalDir: dir, JournalSink: cs,
		SnapshotEvery: killReplaySnapshotEvery,
	})
	if err != nil {
		inner.Close()
		return err
	}
	// The crash callback runs on whatever goroutine hit the kill point
	// (possibly a pool worker mid-append), so the listener teardown is
	// asynchronous — exactly like a process dying under the handler.
	cs.OnCrash = func() { go ls.hs.Close() }

	streamed := 0
	serr := ls.cl.CampaignStream(service.CampaignRequest{Schema: service.Schema, Spec: spec},
		func(rec campaign.Record) error {
			streamed++
			if kp.mode == "stream" && streamed == kp.n {
				cs.Kill()
			}
			return nil
		})
	_ = serr // the severed stream is the expected outcome of a crash
	if !cs.Crashed() {
		ls.stop()
		return fmt.Errorf("kill-replay: kill point %s:%d never fired (%d records streamed — is N larger than the campaign?)", kp.mode, kp.n, streamed)
	}
	// Reap the pool. Runs completing after the crash hit the dead sink
	// and are journaled nowhere, exactly like work lost with a process.
	ls.srv.Close()
	return nil
}

// runKillReplay is the kill-and-replay determinism harness behind the
// smoke command's -kill-at flag: run the campaign directly (the oracle),
// then crash a durable server at each seeded kill point over one
// shared journal directory, then restart once more and stream the full
// campaign to completion. The resumed aggregate must be byte-identical
// to direct execution, every journaled run must be served as a journal
// hit, and the executed-run counter must show no recorded run was
// re-executed.
func runKillReplay(spec campaign.Spec, o *smokeOptions) error {
	kps, err := parseKillPoints(o.killAt)
	if err != nil {
		return err
	}
	dir := o.journalDir
	if dir == "" {
		dir = filepath.Join(o.outdir, "journal-"+o.label)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Direct execution: the oracle.
	directRuns := filepath.Join(o.outdir, "campaign_"+o.label+"-direct.jsonl")
	if _, err := campaign.Run(campaign.Options{Spec: spec, Workers: o.workers, Out: directRuns}); err != nil {
		return err
	}
	directAgg, err := campaign.AggregateFiles(spec, o.label, directRuns)
	if err != nil {
		return err
	}
	directPath := filepath.Join(o.outdir, "CAMPAIGN_"+o.label+"-direct.json")
	if err := campaign.WriteAggregate(directAgg, directPath); err != nil {
		return err
	}

	total := len(spec.ShardRuns(0, 1))
	for i, kp := range kps {
		fmt.Fprintf(os.Stderr, "kill-replay: crash pass %d/%d at %s:%d\n", i+1, len(kps), kp.mode, kp.n)
		if err := crashPass(spec, o, dir, kp); err != nil {
			return err
		}
	}

	// The resumed final pass: a fresh server over the same journal
	// directory, production sink, full campaign to completion.
	ls, err := startServer(service.Options{
		Workers: o.workers, JournalDir: dir,
		SnapshotEvery: killReplaySnapshotEvery,
	})
	if err != nil {
		return fmt.Errorf("kill-replay: restart after crashes failed: %w", err)
	}
	before, err := ls.cl.Stats()
	if err != nil {
		ls.stop()
		return err
	}
	if before.Journal == nil || before.Journal.Records == 0 {
		ls.stop()
		return fmt.Errorf("kill-replay: restarted server loaded no journaled runs — the crash passes recorded nothing")
	}
	recorded := before.Journal.Records

	servedRuns := filepath.Join(o.outdir, "campaign_"+o.label+"-served.jsonl")
	w, err := campaign.NewWriter(servedRuns, false)
	if err != nil {
		ls.stop()
		return err
	}
	serr := ls.cl.CampaignStream(service.CampaignRequest{Schema: service.Schema, Spec: spec},
		func(rec campaign.Record) error { return w.Write(rec) })
	w.Close()
	after, aerr := ls.cl.Stats()
	ls.stop()
	if serr != nil {
		return fmt.Errorf("kill-replay: resumed campaign failed: %w", serr)
	}
	if aerr != nil {
		return aerr
	}

	servedAgg, err := campaign.AggregateFiles(spec, o.label, servedRuns)
	if err != nil {
		return err
	}
	servedPath := filepath.Join(o.outdir, "CAMPAIGN_"+o.label+"-served.json")
	if err := campaign.WriteAggregate(servedAgg, servedPath); err != nil {
		return err
	}
	da, err := os.ReadFile(directPath)
	if err != nil {
		return err
	}
	sa, err := os.ReadFile(servedPath)
	if err != nil {
		return err
	}
	if !bytes.Equal(da, sa) {
		return fmt.Errorf("kill-replay: %s and %s differ — the resumed campaign is not byte-identical to direct execution", directPath, servedPath)
	}
	if after.Journal == nil || after.Journal.Hits != recorded {
		return fmt.Errorf("kill-replay: %d journaled runs but %v journal hits — recorded runs were not all served from the journal", recorded, after.Journal)
	}
	if after.Completed != int64(total)-recorded {
		return fmt.Errorf("kill-replay: %d runs executed on resume, want %d (total %d - %d recorded) — a recorded run was re-executed", after.Completed, int64(total)-recorded, total, recorded)
	}
	verdict, _ := json.Marshal(map[string]any{
		"schema": service.Schema, "kill_replay": "ok", "kill_points": o.killAt,
		"total_runs": total, "recorded": recorded, "journal_hits": after.Journal.Hits,
		"resumed_executed": after.Completed, "snapshots": after.Journal.Snapshots,
	})
	fmt.Println(string(verdict))
	return nil
}
