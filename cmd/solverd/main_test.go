package main

import (
	"flag"
	"os"
	"testing"

	"repro/internal/usagecheck"
)

// TestDocumentedInvocationsParse pins every solverd snippet in this
// command's doc comment, the README and docs/SERVICE.md against the
// real per-mode flag sets, so the usage text cannot drift from the
// flags main parses. Snippets are matched by mode name ("serve",
// "submit", "smoke") because usagecheck keys on the token immediately
// before the first flag.
func TestDocumentedInvocationsParse(t *testing.T) {
	modes := map[string]func() *flag.FlagSet{
		"serve":  func() *flag.FlagSet { fs, _ := newServeFlags(); return fs },
		"submit": func() *flag.FlagSet { fs, _ := newSubmitFlags(); return fs },
		"smoke":  func() *flag.FlagSet { fs, _ := newSmokeFlags(); return fs },
	}
	sources := []string{"main.go", "../../README.md", "../../docs/SERVICE.md", "../../docs/ARCHITECTURE.md", "../../docs/OBSERVABILITY.md"}
	seen := 0
	for _, path := range sources {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		text := string(data)
		for mode, mk := range modes {
			seen += len(usagecheck.Snippets(text, mode))
			for _, p := range usagecheck.Verify(text, mode, mk) {
				t.Errorf("%s: %s", path, p)
			}
		}
	}
	if seen == 0 {
		t.Error("no documented solverd invocations found — the drift test is checking nothing")
	}
}

// TestDefaultsAreSane guards the values the doc comment advertises.
func TestDefaultsAreSane(t *testing.T) {
	sfs, so := newServeFlags()
	if err := sfs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if so.addr != ":8077" || so.workers != 0 || so.queue != 0 || so.pprof || so.traceDir != "" {
		t.Errorf("serve defaults drifted: %+v", so)
	}
	if so.journalDir != "" || so.journalFsync != "always" || so.snapshotEvery != 256 || so.cacheMax != 0 {
		t.Errorf("serve durability defaults drifted: %+v", so)
	}
	ufs, uo := newSubmitFlags()
	if err := ufs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if uo.addr != "http://localhost:8077" || uo.spec != "quick" || uo.label != "dev" || uo.shard != "0/1" || uo.resume || uo.noAgg {
		t.Errorf("submit defaults drifted: %+v", uo)
	}
	kfs, ko := newSmokeFlags()
	if err := kfs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if ko.spec != "quick" || ko.label != "smoke" || ko.outdir != "" {
		t.Errorf("smoke defaults drifted: %+v", ko)
	}
	if ko.killAt != "" || ko.journalDir != "" {
		t.Errorf("smoke kill-replay defaults drifted: %+v", ko)
	}
}
