package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryIsClean makes the docs gate part of the tier-1 suite:
// the repository's own markdown links and internal/precond doc comments
// must pass the same checks CI runs.
func TestRepositoryIsClean(t *testing.T) {
	problems, err := run("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestBrokenLinkIsCaught exercises the link checker's failure path on a
// synthetic file tree.
func TestBrokenLinkIsCaught(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	content := "[ok](./doc.md) [web](https://example.com) [anchor](#x) [bad](missing/file.md)\n"
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "missing/file.md") {
		t.Errorf("want exactly the one broken link flagged, got %v", problems)
	}
}

// TestGoCommentRefIsCaught exercises the Go-comment doc-reference
// checker on a synthetic tree: a comment citing a missing .md file is
// flagged; root-relative, file-relative and glob-ish mentions are not.
func TestGoCommentRefIsCaught(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "REAL.md"), []byte("# real\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "LOCAL.md"), []byte("# local\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `// Package p cites docs/REAL.md (exists, root-relative), LOCAL.md
// (exists, file-relative), every *.md glob (not a reference), an
// external https://example.com/blob/main/ELSEWHERE.md URL (not a
// repository reference), and GHOST.md, which does not exist.
package p
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkGoCommentRefs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "GHOST.md") {
		t.Errorf("want exactly GHOST.md flagged, got %v", problems)
	}
}

// TestUndocumentedExportIsCaught exercises the godoc checker's failure
// path on a synthetic package.
func TestUndocumentedExportIsCaught(t *testing.T) {
	dir := t.TempDir()
	src := `package p

// Documented is fine.
func Documented() {}

func Naked() {}

type Bare struct{}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkExportedDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Errorf("want 2 problems (Naked, Bare), got %v", problems)
	}
}
