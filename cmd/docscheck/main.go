// Command docscheck is the CI docs gate. It fails on: broken relative
// links in the repository's markdown files; references to *.md files
// inside Go comments that point at files which do not exist (the drift
// that once left package docs citing design notes nobody wrote); and
// exported identifiers in the godoc-gated packages (internal/precond,
// internal/campaign, internal/service, internal/obs, internal/traceq)
// that lack doc
// comments. It
// takes the repository root as an optional argument (default ".") and
// exits non-zero with one line per problem.
//
//	go run ./cmd/docscheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// godocGated lists the packages whose exported identifiers must all
// carry doc comments. New subsystems join this list as they land.
var godocGated = []string{
	filepath.Join("internal", "precond"),
	filepath.Join("internal", "campaign"),
	filepath.Join("internal", "service"),
	filepath.Join("internal", "obs"),
	filepath.Join("internal", "traceq"),
}

// run performs all checks and returns the sorted problem list.
func run(root string) ([]string, error) {
	var problems []string
	links, err := checkLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, links...)
	refs, err := checkGoCommentRefs(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, refs...)
	for _, pkg := range godocGated {
		docs, err := checkExportedDocs(filepath.Join(root, pkg))
		if err != nil {
			return nil, err
		}
		problems = append(problems, docs...)
	}
	sort.Strings(problems)
	return problems, nil
}

// mdLink matches [text](target); targets with spaces or parens are not
// used in this repository.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks walks every *.md under root and verifies each relative
// link target exists (anchors stripped). Absolute URLs and pure-anchor
// links are out of scope.
func checkLinks(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", filepath.ToSlash(rel), m[1]))
			}
		}
		return nil
	})
	return problems, err
}

// mdRef matches a documentation-file reference inside prose: a
// non-empty path stem ending in ".md". The leading character class
// keeps glob-ish mentions like "*.md" out.
var mdRef = regexp.MustCompile(`[A-Za-z0-9][A-Za-z0-9_./-]*\.md\b`)

// urlRef matches absolute URLs; they are stripped before scanning so a
// comment citing e.g. https://example.com/blob/main/README.md is not
// mistaken for a repository-relative reference.
var urlRef = regexp.MustCompile(`[a-zA-Z][a-zA-Z0-9+.-]*://\S+`)

// checkGoCommentRefs walks every *.go file under root and verifies
// that each *.md file its comments mention exists — resolved against
// the repository root (the convention for cross-package references
// like "docs/SERVICE.md") or against the file's own directory. This is
// the gate that keeps Go package docs from citing documentation that
// was never written or has been renamed: markdown links are already
// covered by checkLinks, but Go comments are plain prose and used to
// drift silently.
func checkGoCommentRefs(root string) ([]string, error) {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		seen := map[string]bool{}
		for _, cg := range file.Comments {
			text := urlRef.ReplaceAllString(cg.Text(), " ")
			for _, m := range mdRef.FindAllString(text, -1) {
				if seen[m] {
					continue
				}
				seen[m] = true
				target := filepath.FromSlash(m)
				if _, err := os.Stat(filepath.Join(root, target)); err == nil {
					continue
				}
				if _, err := os.Stat(filepath.Join(filepath.Dir(path), target)); err == nil {
					continue
				}
				problems = append(problems, fmt.Sprintf("%s: comment references %q, which does not exist", filepath.ToSlash(rel), m))
			}
		}
		return nil
	})
	return problems, err
}

// checkExportedDocs parses the package at dir and reports every
// exported top-level function, method, type, constant and variable
// without a doc comment.
func checkExportedDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(filepath.Join(dir, filepath.Base(p.Filename))), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}
